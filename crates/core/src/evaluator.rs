//! Incremental opacity evaluation with trial / apply / undo.
//!
//! The greedy heuristics (Algorithms 4 and 5) evaluate `LO(G')` for *every*
//! candidate edge at *every* step — the dominant cost in the paper's
//! `O(|E|^2 |V|^3)` worst case. Recomputing all-pairs distances per trial is
//! wasteful: removing edge `(u, v)` can only lengthen pairs whose shortest
//! `≤ L` path crosses that edge, and any such path reaches `u` or `v` within
//! `L − 1` hops from its source. The evaluator therefore:
//!
//! 1. maintains the truncated distance matrix and the per-type
//!    within-L counts of the *current* graph;
//! 2. for a **trial**, re-runs a depth-L BFS only from the affected sources
//!    `S = { i : min(d(i,u), d(i,v)) ≤ L−1 }` (old distances for removal,
//!    new for insertion) and diffs the rows — counts change only when a pair
//!    crosses the `≤ L` boundary;
//! 3. for an **apply**, additionally writes the changed rows and returns an
//!    [`UndoToken`] so look-ahead combinations roll back in O(changes).
//!
//! `L = 1` short-circuits entirely: a single edge flip changes exactly one
//! pair. Equivalence with full recomputation is property-tested
//! (`tests/evaluator_equivalence.rs`).

use crate::lo::LoAssessment;
use crate::types::{TypeSpec, TypeSystem};
use lopacity_apsp::{ApspEngine, DistanceMatrix, TruncatedBfs, INF};
use lopacity_graph::{Edge, Graph, VertexId};

/// Incremental `maxLO` evaluator over a mutable working graph.
///
/// `Clone` is a first-class operation: the parallel candidate scan forks
/// one evaluator per worker (graph, `DistanceMatrix`, within-L counters,
/// scratch) and trials candidates against the forks — trials never mutate
/// lasting state. Cost: `O(|V|²)` for the distance matrix (half that when
/// nibble-packed), which is why forks are **persistent**: they are cloned
/// once at the first sharded scan of a run and then kept state-identical
/// by replaying each committed move's [`CommitDelta`]
/// ([`OpacityEvaluator::replay_commit`], O(changed cells)) instead of
/// being re-cloned every step.
#[derive(Clone)]
pub struct OpacityEvaluator {
    graph: Graph,
    types: TypeSystem,
    l: u8,
    dist: DistanceMatrix,
    counts: Vec<u64>,
    revision: u64,
    // Scratch (allocated once):
    bfs: TruncatedBfs,
    in_sources: Vec<bool>,
    sources: Vec<VertexId>,
    counts_scratch: Vec<u64>,
    /// Insertion scratch: `(vertex, dist to near endpoint, dist to far
    /// endpoint)` snapshots of the `L-1` balls around the inserted edge's
    /// endpoints, plus membership marks for pair deduplication.
    ball_a: Vec<(VertexId, u8, u8)>,
    ball_b: Vec<(VertexId, u8, u8)>,
    in_ball_a: Vec<bool>,
    in_ball_b: Vec<bool>,
    /// Cached two largest distinct opacity values with multiplicities;
    /// rebuilt lazily after any committed change. Lets a single-type-delta
    /// trial (the whole candidate scan at `L = 1`) run in O(1) instead of
    /// O(#types).
    top_two: Option<TopTwo>,
}

/// The two largest distinct per-type opacity values and their
/// multiplicities.
#[derive(Debug, Clone, Copy)]
struct TopTwo {
    first: Ratio,
    n_first: usize,
    second: Option<(Ratio, usize)>,
}

/// An exact non-negative rational with positive denominator.
#[derive(Debug, Clone, Copy)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    fn cmp(self, other: Ratio) -> std::cmp::Ordering {
        (self.num as u128 * other.den as u128).cmp(&(other.num as u128 * self.den as u128))
    }
}

impl TopTwo {
    fn scan(counts: &[u64], denoms: &[u64]) -> TopTwo {
        let mut top = TopTwo { first: Ratio { num: 0, den: 1 }, n_first: 0, second: None };
        for (&c, &d) in counts.iter().zip(denoms) {
            if d == 0 {
                continue;
            }
            top.offer(Ratio { num: c, den: d });
        }
        top
    }

    fn offer(&mut self, r: Ratio) {
        use std::cmp::Ordering::*;
        if self.n_first == 0 {
            self.first = r;
            self.n_first = 1;
            return;
        }
        match r.cmp(self.first) {
            Greater => {
                self.second = Some((self.first, self.n_first));
                self.first = r;
                self.n_first = 1;
            }
            Equal => self.n_first += 1,
            Less => match &mut self.second {
                None => self.second = Some((r, 1)),
                Some((s, n)) => match r.cmp(*s) {
                    Greater => {
                        *s = r;
                        *n = 1;
                    }
                    Equal => *n += 1,
                    Less => {}
                },
            },
        }
    }
}

/// Which mutation an [`UndoToken`] reverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Removed(Edge),
    Inserted(Edge),
}

/// Proof of an applied mutation; feed back to [`OpacityEvaluator::undo`] in
/// LIFO order to roll back.
pub struct UndoToken {
    op: Op,
    /// `(flat pair index, previous truncated distance)`.
    dist_changes: Vec<(usize, u8)>,
    /// `(type id, delta applied to counts)`.
    count_changes: Vec<(u32, i64)>,
    /// Evaluator revision right after this apply (LIFO check).
    revision: u64,
}

/// The **forward** net effect of one committed mutation: the edge flip,
/// the distance-matrix cells it changed (with their *new* values), and the
/// per-type count deltas.
///
/// This is the replay-sync half of the persistent-fork protocol: a worker
/// fork that was state-identical to the main evaluator before an apply can
/// be brought back in sync by [`OpacityEvaluator::replay_commit`] in
/// O(changed cells) — a pure memory patch, no BFS, no `O(|V|²)` copy.
/// Captured from the apply's [`UndoToken`] (which records the same cells
/// backward) via [`OpacityEvaluator::commit_delta`].
#[derive(Debug, Clone)]
pub struct CommitDelta {
    op: Op,
    /// `(flat pair index, new truncated distance)`.
    dist_changes: Vec<(usize, u8)>,
    /// `(type id, delta to apply to counts)`.
    count_changes: Vec<(u32, i64)>,
}

impl CommitDelta {
    /// Number of distance-matrix cells this commit changed.
    pub fn changed_cells(&self) -> usize {
        self.dist_changes.len()
    }
}

impl OpacityEvaluator {
    /// Builds the evaluator: one full truncated APSP plus the per-type
    /// counts. The type system is frozen from `graph`'s current degrees.
    ///
    /// # Panics
    /// Panics when `l == 0` (no linkage shorter than one edge exists) or
    /// `l > MAX_L`.
    pub fn new(graph: Graph, spec: &TypeSpec, l: u8) -> Self {
        Self::with_engine(graph, spec, l, ApspEngine::default())
    }

    /// Like [`OpacityEvaluator::new`] with an explicit initial APSP engine.
    pub fn with_engine(graph: Graph, spec: &TypeSpec, l: u8, engine: ApspEngine) -> Self {
        Self::with_engine_parallel(graph, spec, l, engine, lopacity_util::Parallelism::Off)
    }

    /// Like [`OpacityEvaluator::with_engine`], additionally sharding the
    /// initial APSP build over up to `parallelism` scoped threads (only the
    /// default truncated-BFS engine parallelizes; the build output is
    /// identical for every setting, see [`ApspEngine::compute_with`]).
    pub fn with_engine_parallel(
        graph: Graph,
        spec: &TypeSpec,
        l: u8,
        engine: ApspEngine,
        parallelism: lopacity_util::Parallelism,
    ) -> Self {
        assert!(l >= 1, "L must be at least 1");
        let types = TypeSystem::build(&graph, spec);
        let dist = engine.compute_with(&graph, l, parallelism);
        let counts = crate::opacity::count_within_l(&dist, &types, l);
        let n = graph.num_vertices();
        OpacityEvaluator {
            graph,
            l,
            dist,
            revision: 0,
            bfs: TruncatedBfs::new(n),
            in_sources: vec![false; n],
            sources: Vec::new(),
            counts_scratch: counts.clone(),
            ball_a: Vec::new(),
            ball_b: Vec::new(),
            in_ball_a: vec![false; n],
            in_ball_b: vec![false; n],
            counts,
            types,
            top_two: None,
        }
    }

    /// The current working graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The frozen type system.
    pub fn types(&self) -> &TypeSystem {
        &self.types
    }

    /// The length threshold L.
    pub fn l(&self) -> u8 {
        self.l
    }

    /// Consumes the evaluator, returning the working graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Current per-type within-L counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Net applied mutations (applies minus undos) since construction.
    /// A fork and its main evaluator agree on this exactly when every
    /// commit has been replayed — the cheap half of the fork sync check.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// `maxLO` and `N(maxLO)` of the current graph.
    pub fn assessment(&self) -> LoAssessment {
        LoAssessment::from_counts(&self.counts, self.types.denominators())
    }

    /// Assessment of the graph with `e` removed, without mutating state.
    ///
    /// # Panics
    /// Panics when `e` is not currently an edge.
    pub fn trial_remove(&mut self, e: Edge) -> LoAssessment {
        let (u, v) = e.endpoints();
        if self.l == 1 {
            // Only the pair (u, v) itself crosses the boundary.
            debug_assert!(self.graph.has_edge(u, v), "trial_remove of non-edge {e}");
            return self.single_pair_assessment(u, v, -1);
        }
        let removed = self.graph.remove_edge(u, v);
        assert!(removed, "trial_remove of non-edge {e}");
        self.collect_sources_from_dist(u, v);
        self.counts_scratch.copy_from_slice(&self.counts);
        let n = self.graph.num_vertices();
        for idx in 0..self.sources.len() {
            let i = self.sources[idx];
            self.bfs.run(&self.graph, i, self.l);
            for j in 0..n as VertexId {
                if j == i || (self.in_sources[j as usize] && j < i) {
                    continue;
                }
                let old = self.dist.get(i, j);
                if old != INF && self.bfs.dist(j) == INF {
                    if let Some(t) = self.types.type_of(i, j) {
                        self.counts_scratch[t as usize] -= 1;
                    }
                }
            }
        }
        self.clear_sources();
        self.graph.add_edge(u, v);
        LoAssessment::from_counts(&self.counts_scratch, self.types.denominators())
    }

    /// Assessment of the graph with `e` inserted, without mutating state.
    ///
    /// Unlike removal, single-edge insertion has a closed form over the old
    /// distances — a new shortest path uses the inserted edge at most once,
    /// so `d'(i,j) = min(d(i,j), d(i,u)+1+d(v,j), d(i,v)+1+d(u,j))` — and
    /// every pair entering the `<= L` set has both legs inside the `L-1`
    /// balls around `u` and `v`. No BFS, no graph mutation: `O(n + |B_u|
    /// |B_v|)` per trial, which is what makes Algorithm 5's `O(|V|^2)`
    /// insertion candidate scans tractable.
    ///
    /// # Panics
    /// Panics when `e` already is an edge or touches out-of-range vertices.
    pub fn trial_insert(&mut self, e: Edge) -> LoAssessment {
        let (u, v) = e.endpoints();
        assert!(!self.graph.has_edge(u, v), "trial_insert of existing edge {e}");
        if self.l == 1 {
            return self.single_pair_assessment(u, v, 1);
        }
        self.collect_balls(u, v);
        self.counts_scratch.copy_from_slice(&self.counts);
        let l = self.l as u16;
        for a in 0..self.ball_a.len() {
            let (i, diu, div) = self.ball_a[a];
            for b in 0..self.ball_b.len() {
                let (j, dvj, duj) = self.ball_b[b];
                if i == j
                    || (i > j && self.in_ball_b[i as usize] && self.in_ball_a[j as usize])
                {
                    continue; // each unordered pair handled exactly once
                }
                if self.dist.get(i, j) != INF {
                    continue; // already within L; membership cannot change
                }
                let via1 = diu as u16 + 1 + dvj as u16;
                let via2 = div as u16 + 1 + duj as u16;
                if via1.min(via2) <= l {
                    if let Some(t) = self.types.type_of(i, j) {
                        self.counts_scratch[t as usize] += 1;
                    }
                }
            }
        }
        self.clear_balls();
        LoAssessment::from_counts(&self.counts_scratch, self.types.denominators())
    }

    /// Removes `e` permanently, updating distances and counts; returns an
    /// undo token.
    pub fn apply_remove(&mut self, e: Edge) -> UndoToken {
        let (u, v) = e.endpoints();
        let removed = self.graph.remove_edge(u, v);
        assert!(removed, "apply_remove of non-edge {e}");
        // Sources from the *pre-removal* distances: the matrix still holds
        // them (the graph edge is already gone, but `dist` is stale-by-one).
        self.collect_sources_from_dist(u, v);
        let mut token = UndoToken {
            op: Op::Removed(e),
            dist_changes: Vec::new(),
            count_changes: Vec::new(),
            revision: self.revision + 1,
        };
        let n = self.graph.num_vertices();
        for idx in 0..self.sources.len() {
            let i = self.sources[idx];
            self.bfs.run(&self.graph, i, self.l);
            for j in 0..n as VertexId {
                if j == i || (self.in_sources[j as usize] && j < i) {
                    continue;
                }
                let old = self.dist.get(i, j);
                if old == INF {
                    continue; // removal never shortens
                }
                let new = self.bfs.dist(j);
                if new != old {
                    let flat = self.dist.index(i, j);
                    token.dist_changes.push((flat, old));
                    self.dist.set_flat(flat, new);
                    if new == INF {
                        if let Some(t) = self.types.type_of(i, j) {
                            self.counts[t as usize] -= 1;
                            token.count_changes.push((t, -1));
                        }
                    }
                }
            }
        }
        self.clear_sources();
        self.revision += 1;
        self.top_two = None;
        token
    }

    /// Inserts `e` permanently, updating distances and counts; returns an
    /// undo token. Uses the same closed form as [`Self::trial_insert`]; the
    /// ball snapshots are taken from the pre-insertion matrix, so in-place
    /// cell updates cannot contaminate later reads.
    pub fn apply_insert(&mut self, e: Edge) -> UndoToken {
        let (u, v) = e.endpoints();
        let added = self.graph.add_edge(u, v);
        assert!(added, "apply_insert of existing edge {e}");
        self.collect_balls(u, v);
        let mut token = UndoToken {
            op: Op::Inserted(e),
            dist_changes: Vec::new(),
            count_changes: Vec::new(),
            revision: self.revision + 1,
        };
        let l = self.l as u16;
        for a in 0..self.ball_a.len() {
            let (i, diu, div) = self.ball_a[a];
            for b in 0..self.ball_b.len() {
                let (j, dvj, duj) = self.ball_b[b];
                if i == j
                    || (i > j && self.in_ball_b[i as usize] && self.in_ball_a[j as usize])
                {
                    continue;
                }
                let via1 = diu as u16 + 1 + dvj as u16;
                let via2 = div as u16 + 1 + duj as u16;
                let best = via1.min(via2);
                if best > l {
                    continue;
                }
                let old = self.dist.get(i, j);
                let best = best as u8;
                if old == INF || best < old {
                    let flat = self.dist.index(i, j);
                    token.dist_changes.push((flat, old));
                    self.dist.set_flat(flat, best);
                    if old == INF {
                        if let Some(t) = self.types.type_of(i, j) {
                            self.counts[t as usize] += 1;
                            token.count_changes.push((t, 1));
                        }
                    }
                }
            }
        }
        self.clear_balls();
        self.revision += 1;
        self.top_two = None;
        token
    }

    /// Rolls back the most recent un-undone apply. Tokens must be returned
    /// in LIFO order.
    ///
    /// # Panics
    /// Panics when tokens are undone out of order.
    pub fn undo(&mut self, token: UndoToken) {
        assert_eq!(
            token.revision, self.revision,
            "undo out of order: token revision {} vs evaluator {}",
            token.revision, self.revision
        );
        for &(flat, old) in &token.dist_changes {
            self.dist.set_flat(flat, old);
        }
        for &(t, delta) in &token.count_changes {
            let slot = &mut self.counts[t as usize];
            *slot = (*slot as i64 - delta) as u64;
        }
        match token.op {
            Op::Removed(e) => {
                self.graph.add_edge(e.u(), e.v());
            }
            Op::Inserted(e) => {
                self.graph.remove_edge(e.u(), e.v());
            }
        }
        self.revision -= 1;
        self.top_two = None;
    }

    /// Captures the forward diff of the most recent apply on `self` —
    /// `token` must be that apply's (not yet undone) token. The new cell
    /// values are read back from `self`, so the delta replays the apply
    /// exactly, byte for byte.
    ///
    /// # Panics
    /// Panics when `token` is not the evaluator's most recent apply.
    pub fn commit_delta(&self, token: &UndoToken) -> CommitDelta {
        assert_eq!(
            token.revision, self.revision,
            "commit_delta of a stale token: token revision {} vs evaluator {}",
            token.revision, self.revision
        );
        CommitDelta {
            op: token.op,
            dist_changes: token
                .dist_changes
                .iter()
                .map(|&(flat, _old)| (flat, self.dist.get_flat(flat)))
                .collect(),
            count_changes: token.count_changes.clone(),
        }
    }

    /// Replays a captured [`CommitDelta`] onto this evaluator, which must
    /// be state-identical to the evaluator the delta was captured from as
    /// of *before* that apply (the fork contract: forks only ever mutate
    /// through replayed commits, so they stay identical forever). Runs in
    /// O(changed cells) — no BFS, no allocation beyond the delta itself.
    ///
    /// # Panics
    /// Panics (debug) when the edge flip does not apply, i.e. the fork was
    /// out of sync.
    pub fn replay_commit(&mut self, delta: &CommitDelta) {
        match delta.op {
            Op::Removed(e) => {
                let removed = self.graph.remove_edge(e.u(), e.v());
                debug_assert!(removed, "replay of removal {e} on an out-of-sync fork");
            }
            Op::Inserted(e) => {
                let added = self.graph.add_edge(e.u(), e.v());
                debug_assert!(added, "replay of insertion {e} on an out-of-sync fork");
            }
        }
        for &(flat, new) in &delta.dist_changes {
            self.dist.set_flat(flat, new);
        }
        for &(t, d) in &delta.count_changes {
            let slot = &mut self.counts[t as usize];
            *slot = (*slot as i64 + d) as u64;
        }
        self.revision += 1;
        self.top_two = None;
    }

    /// Full recomputation of distances and counts — the reference the
    /// incremental path is validated against.
    pub fn recompute_full(&self) -> (DistanceMatrix, Vec<u64>) {
        let dist = ApspEngine::TruncatedBfs.compute(&self.graph, self.l);
        let counts = crate::opacity::count_within_l(&dist, &self.types, self.l);
        (dist, counts)
    }

    /// Debug check: incremental state equals a full recomputation.
    pub fn verify_consistency(&self) -> Result<(), String> {
        let (dist, counts) = self.recompute_full();
        if dist != self.dist {
            for (i, j, d) in dist.iter_pairs() {
                if self.dist.get(i, j) != d {
                    return Err(format!(
                        "distance mismatch at ({i}, {j}): incremental {} vs full {d}",
                        self.dist.get(i, j)
                    ));
                }
            }
        }
        if counts != self.counts {
            return Err(format!(
                "count mismatch: incremental {:?} vs full {counts:?}",
                self.counts
            ));
        }
        Ok(())
    }

    /// L = 1 fast path: flipping edge `(u, v)` changes exactly that pair,
    /// i.e. one type's count by ±1. With the cached top-two opacity values
    /// the resulting `(maxLO, N)` follows in O(1).
    fn single_pair_assessment(&mut self, u: VertexId, v: VertexId, delta: i64) -> LoAssessment {
        let Some(t) = self.types.type_of(u, v) else {
            return self.assessment();
        };
        let den = self.types.denominators()[t as usize];
        if den == 0 {
            return self.assessment();
        }
        let top = *self
            .top_two
            .get_or_insert_with(|| TopTwo::scan(&self.counts, self.types.denominators()));
        let old = Ratio { num: self.counts[t as usize], den };
        let new = Ratio { num: (self.counts[t as usize] as i64 + delta) as u64, den };

        use std::cmp::Ordering::*;
        // Remove one instance of `old` from the cached top values.
        let base = if old.cmp(top.first) == Equal {
            if top.n_first > 1 {
                Some((top.first, top.n_first - 1))
            } else {
                top.second
            }
        } else {
            // `old` is below the max; the max is untouched.
            Some((top.first, top.n_first))
        };
        // Fold `new` back in.
        match base {
            None => LoAssessment::new(new.num, new.den, 1),
            Some((b, nb)) => match new.cmp(b) {
                Greater => LoAssessment::new(new.num, new.den, 1),
                Equal => LoAssessment::new(b.num, b.den, nb + 1),
                Less => LoAssessment::new(b.num, b.den, nb),
            },
        }
    }

    /// `S = { i : min(d(i,u), d(i,v)) <= L-1 }` from the stored distances.
    fn collect_sources_from_dist(&mut self, u: VertexId, v: VertexId) {
        let n = self.graph.num_vertices();
        let cutoff = self.l - 1;
        self.sources.clear();
        for i in 0..n as VertexId {
            let du = self.dist.get(i, u);
            let dv = self.dist.get(i, v);
            if du.min(dv) <= cutoff {
                self.sources.push(i);
                self.in_sources[i as usize] = true;
            }
        }
    }

    /// Snapshots the `L-1` balls around `u` and `v` from the stored (old)
    /// distances: `ball_a = { (i, d(i,u), d(i,v)) : d(i,u) <= L-1 }` and
    /// symmetrically for `ball_b` around `v`.
    fn collect_balls(&mut self, u: VertexId, v: VertexId) {
        let cutoff = self.l - 1;
        let n = self.graph.num_vertices();
        self.ball_a.clear();
        self.ball_b.clear();
        for i in 0..n as VertexId {
            let diu = self.dist.get(i, u);
            let div = self.dist.get(i, v);
            if diu <= cutoff {
                self.ball_a.push((i, diu, div));
                self.in_ball_a[i as usize] = true;
            }
            if div <= cutoff {
                self.ball_b.push((i, div, diu));
                self.in_ball_b[i as usize] = true;
            }
        }
    }

    fn clear_balls(&mut self) {
        for &(i, _, _) in &self.ball_a {
            self.in_ball_a[i as usize] = false;
        }
        for &(j, _, _) in &self.ball_b {
            self.in_ball_b[j as usize] = false;
        }
    }

    fn clear_sources(&mut self) {
        for &i in &self.sources {
            self.in_sources[i as usize] = false;
        }
        self.sources.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    fn evaluator(l: u8) -> OpacityEvaluator {
        OpacityEvaluator::new(paper_graph(), &TypeSpec::DegreePairs, l)
    }

    #[test]
    fn initial_assessment_matches_algorithm_1() {
        let ev = evaluator(1);
        let a = ev.assessment();
        assert_eq!(a.as_f64(), 1.0);
        assert_eq!(a.n_at_max(), 2);
        ev.verify_consistency().unwrap();
    }

    #[test]
    fn trial_remove_matches_full_recomputation() {
        for l in 1..=3u8 {
            let mut ev = evaluator(l);
            for e in paper_graph().edge_vec() {
                let trial = ev.trial_remove(e);
                let mut g = paper_graph();
                g.remove_edge(e.u(), e.v());
                let full =
                    reference_assessment(&g, ev.types(), l);
                assert_eq!(trial.ratio(), full.ratio(), "edge {e}, L={l}");
                assert_eq!(trial.n_at_max(), full.n_at_max(), "edge {e}, L={l}");
                // Trial must not change state.
                ev.verify_consistency().unwrap();
            }
        }
    }

    #[test]
    fn trial_insert_matches_full_recomputation() {
        for l in 1..=3u8 {
            let mut ev = evaluator(l);
            for e in paper_graph().non_edges().collect::<Vec<_>>() {
                let trial = ev.trial_insert(e);
                let mut g = paper_graph();
                g.add_edge(e.u(), e.v());
                let full = reference_assessment(&g, ev.types(), l);
                assert_eq!(trial.ratio(), full.ratio(), "edge {e}, L={l}");
                ev.verify_consistency().unwrap();
            }
        }
    }

    #[test]
    fn apply_then_undo_restores_everything() {
        for l in 1..=3u8 {
            let mut ev = evaluator(l);
            let before_counts = ev.counts().to_vec();
            let e = Edge::new(1, 4);
            let token = ev.apply_remove(e);
            assert!(!ev.graph().has_edge(1, 4));
            ev.verify_consistency().unwrap();
            ev.undo(token);
            assert!(ev.graph().has_edge(1, 4));
            assert_eq!(ev.counts(), before_counts.as_slice(), "L={l}");
            ev.verify_consistency().unwrap();
        }
    }

    #[test]
    fn nested_apply_undo_is_lifo() {
        let mut ev = evaluator(2);
        let t1 = ev.apply_remove(Edge::new(1, 4));
        let t2 = ev.apply_insert(Edge::new(0, 6));
        ev.verify_consistency().unwrap();
        ev.undo(t2);
        ev.undo(t1);
        ev.verify_consistency().unwrap();
        assert_eq!(ev.graph(), &paper_graph());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn undo_rejects_wrong_order() {
        let mut ev = evaluator(2);
        let t1 = ev.apply_remove(Edge::new(1, 4));
        let _t2 = ev.apply_insert(Edge::new(0, 6));
        ev.undo(t1); // t2 still outstanding
    }

    #[test]
    fn applies_compose_with_full_recompute() {
        let mut ev = evaluator(3);
        let _ = ev.apply_remove(Edge::new(1, 4));
        let _ = ev.apply_remove(Edge::new(2, 5));
        let _ = ev.apply_insert(Edge::new(0, 6));
        ev.verify_consistency().unwrap();
        let a = ev.assessment();
        let full = reference_assessment(ev.graph(), ev.types(), 3);
        assert_eq!(a.ratio(), full.ratio());
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn trial_remove_rejects_non_edges() {
        let mut ev = evaluator(2);
        ev.trial_remove(Edge::new(0, 6));
    }

    #[test]
    #[should_panic(expected = "existing edge")]
    fn trial_insert_rejects_existing_edges() {
        let mut ev = evaluator(2);
        ev.trial_insert(Edge::new(0, 1));
    }

    /// A replayed fork is byte-identical to the evaluator it mirrors:
    /// same distances, counts, graph, and (crucially for the scan) the
    /// same trial results afterwards.
    #[test]
    fn replay_commit_keeps_forks_identical() {
        for l in 1..=3u8 {
            let mut main = evaluator(l);
            let mut fork = main.clone();
            for (edge, insert) in
                [(Edge::new(1, 4), false), (Edge::new(0, 6), true), (Edge::new(2, 5), false)]
            {
                let token =
                    if insert { main.apply_insert(edge) } else { main.apply_remove(edge) };
                let delta = main.commit_delta(&token);
                fork.replay_commit(&delta);
                fork.verify_consistency().unwrap();
                assert_eq!(fork.graph(), main.graph(), "L={l}");
                assert_eq!(fork.counts(), main.counts(), "L={l}");
                for e in main.graph().edge_vec() {
                    let a = main.trial_remove(e);
                    let b = fork.trial_remove(e);
                    assert_eq!(a.ratio(), b.ratio(), "trial {e} diverged, L={l}");
                    assert_eq!(a.n_at_max(), b.n_at_max(), "trial {e} diverged, L={l}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale token")]
    fn commit_delta_rejects_stale_tokens() {
        let mut ev = evaluator(2);
        let t1 = ev.apply_remove(Edge::new(1, 4));
        let _t2 = ev.apply_remove(Edge::new(2, 5));
        ev.commit_delta(&t1); // t1 is no longer the most recent apply
    }

    /// Trial/apply/undo round-trips are exact on both storage layouts of
    /// the distance matrix, including the `L > NIBBLE_MAX_L` byte
    /// fallback (the graph is tiny, so distances saturate far below L and
    /// the two layouts must agree everywhere).
    #[test]
    fn apply_undo_round_trips_across_the_packing_boundary() {
        use lopacity_apsp::NIBBLE_MAX_L;
        for l in [NIBBLE_MAX_L - 1, NIBBLE_MAX_L, NIBBLE_MAX_L + 1, NIBBLE_MAX_L + 2] {
            let mut ev = evaluator(l);
            let before_counts = ev.counts().to_vec();
            let t1 = ev.apply_remove(Edge::new(4, 5));
            let t2 = ev.apply_insert(Edge::new(0, 6));
            ev.verify_consistency().unwrap();
            let trial = ev.trial_remove(Edge::new(0, 1));
            let full = {
                let mut g = ev.graph().clone();
                g.remove_edge(0, 1);
                reference_assessment(&g, ev.types(), l)
            };
            assert_eq!(trial.ratio(), full.ratio(), "L={l}");
            ev.undo(t2);
            ev.undo(t1);
            ev.verify_consistency().unwrap();
            assert_eq!(ev.counts(), before_counts.as_slice(), "L={l}");
            assert_eq!(ev.graph(), &paper_graph(), "L={l}");
        }
    }

    /// Reference: assessment from a scratch APSP with a *fixed* type system
    /// (original degrees of the paper graph).
    fn reference_assessment(g: &Graph, types: &TypeSystem, l: u8) -> LoAssessment {
        let dist = ApspEngine::TruncatedBfs.compute(g, l);
        let counts = crate::opacity::count_within_l(&dist, types, l);
        LoAssessment::from_counts(&counts, types.denominators())
    }
}
