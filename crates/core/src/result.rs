//! Anonymization run reports.

use lopacity_graph::{Edge, Graph};

/// Everything a run of Algorithm 4 or 5 produced.
#[derive(Debug, Clone)]
pub struct AnonymizationOutcome {
    /// The anonymized graph `Ĝ(V, Ê)`.
    pub graph: Graph,
    /// Edges removed, in removal order (the paper's `E_D`).
    pub removed: Vec<Edge>,
    /// Edges inserted, in insertion order (the paper's `E_A`).
    pub inserted: Vec<Edge>,
    /// Greedy steps executed (one step = one committed move, possibly
    /// multi-edge under look-ahead).
    pub steps: usize,
    /// Candidate evaluations performed (the search-space size actually
    /// explored; grows steeply with `la`).
    pub trials: u64,
    /// `maxLO` of the final graph.
    pub final_lo: f64,
    /// `N(maxLO)` of the final graph.
    pub final_n_at_max: usize,
    /// Whether `maxLO <= θ` was reached (false = candidates exhausted or
    /// step budget hit).
    pub achieved: bool,
    /// Full `O(|V|²)` evaluator clones performed for scan workers — the
    /// one-off warmup cost of the persistent-fork protocol (at most
    /// `workers - 1` per run; 0 for sequential scans). A **performance
    /// counter**, not part of the anonymization result: it varies with
    /// the parallelism setting while every other field stays bit-for-bit
    /// identical, so it is excluded from [`std::fmt::Display`] and from
    /// the equivalence contract.
    pub fork_clones: u64,
}

impl AnonymizationOutcome {
    /// Distortion against the original graph (Equation 1):
    /// `|E Δ Ê| / |E|`. The algorithms never undo their own moves, so the
    /// edit lists *are* the symmetric difference.
    pub fn distortion(&self, original: &Graph) -> f64 {
        let delta = self.removed.len() + self.inserted.len();
        if delta == 0 {
            return 0.0;
        }
        delta as f64 / original.num_edges() as f64
    }

    /// Total edge edits.
    pub fn edits(&self) -> usize {
        self.removed.len() + self.inserted.len()
    }
}

impl std::fmt::Display for AnonymizationOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in {} steps ({} trials): -{} +{} edges, maxLO {:.4} (×{})",
            if self.achieved { "achieved" } else { "NOT achieved" },
            self.steps,
            self.trials,
            self.removed.len(),
            self.inserted.len(),
            self.final_lo,
            self.final_n_at_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(removed: usize, inserted: usize) -> AnonymizationOutcome {
        AnonymizationOutcome {
            graph: Graph::new(4),
            removed: (0..removed).map(|i| Edge::new(i as u32, i as u32 + 1)).collect(),
            inserted: (0..inserted).map(|i| Edge::new(i as u32, i as u32 + 2)).collect(),
            steps: removed.max(inserted),
            trials: 10,
            final_lo: 0.5,
            final_n_at_max: 1,
            achieved: true,
            fork_clones: 0,
        }
    }

    #[test]
    fn distortion_counts_both_sides() {
        let original = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(outcome(1, 1).distortion(&original), 0.5);
        assert_eq!(outcome(0, 0).distortion(&original), 0.0);
        assert_eq!(outcome(2, 0).distortion(&original), 0.5);
    }

    #[test]
    fn edits_sums_lists() {
        assert_eq!(outcome(2, 3).edits(), 5);
    }

    #[test]
    fn display_reports_achievement() {
        let text = outcome(1, 0).to_string();
        assert!(text.starts_with("achieved"));
        assert!(text.contains("-1 +0"));
    }
}
