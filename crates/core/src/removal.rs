//! Algorithm 4: greedy **Edge Removal** with look-ahead — the shared
//! move-selection machinery, plus the deprecated free-function entry point
//! (the maintained surface is [`crate::Anonymizer`] running
//! [`crate::strategy::Removal`]; the greedy loop itself lives in
//! [`crate::strategy::drive_greedy`]).
//!
//! Each step evaluates the removal of every candidate edge, choosing the
//! move that minimizes `(maxLO, N(maxLO))` lexicographically; exact ties
//! are broken uniformly at random per Algorithm 4 (lines 14–18), realized
//! here as the order-independent seeded priority of the internal
//! `tracker` module.
//! With look-ahead `la > 1`, combinations of up to `la` edges enter the
//! search space (see [`crate::config::LookaheadMode`] for the two explored
//! readings of the paper's description). The loop ends when `maxLO <= θ`
//! or no removable edge remains.
//!
//! # The sharded candidate scan
//!
//! The single-edge scan — every candidate trialed through the incremental
//! [`OpacityEvaluator`] — dominates the runtime of both heuristics. Under
//! [`crate::config::AnonymizeConfig::parallelism`] it is sharded across a
//! scoped-thread pool ([`lopacity_util::pool`]): the candidate list splits
//! into contiguous shards, each worker trials its shard against a
//! **persistent evaluator fork** (internal `forks` module: cloned once
//! per run at warmup, then kept state-identical by replaying each
//! committed move's [`crate::evaluator::CommitDelta`] in O(changed
//! cells) — never re-cloned per step), and
//! feeds a private `BestTracker`; the per-shard winners then merge. The
//! merged argmin is **bit-for-bit the sequential scan's choice** for every
//! worker count because the tracker's total order — `(maxLO, N, combo
//! size, seeded key, global candidate index)` — is a pure function of the
//! candidate set and the per-step nonce, never of scan order or thread
//! scheduling; the nonce is drawn exactly once per step, so the run RNG
//! evolves identically too. Multi-edge look-ahead combos share prefix
//! apply/undo state and remain sequential.

use crate::config::{AnonymizeConfig, LookaheadMode};
use crate::evaluator::OpacityEvaluator;
use crate::forks::ForkSet;
use crate::lo::LoAssessment;
use crate::result::AnonymizationOutcome;
use crate::strategy::MoveKind;
use crate::tracker::{BestTracker, TieBreak};
use crate::types::TypeSpec;
use lopacity_graph::{Edge, Graph};
use lopacity_util::{pool, Parallelism};
use rand::rngs::StdRng;

/// Fewest estimated distance-cell visits for which [`Parallelism::Auto`]
/// shards a **warm** size-1 scan — persistent forks already exist, so
/// sharding pays only scoped-thread spawn/join (~10–20 µs per worker).
///
/// The unit is the evaluator's
/// [`OpacityEvaluator::estimated_trial_cost`] (mean ball × stored-row
/// scan length) times the candidate count. A cell visit is a few ns, so
/// `2²⁰` ≈ 1M visits ≈ single-digit milliseconds of scan — comfortably
/// above a handful of spawns. The floor replaces the fixed 64-candidate
/// cutoff of issue 4, which was calibrated for *dense* trials
/// (`O(|V|)` per affected source, ~20k cells on the smoke bench): under
/// the sparse store a trial is ball-bounded — often 50–100× cheaper —
/// and 64 tiny trials (~100k cells total) would be pure spawn overhead;
/// conversely a dense 10⁵-vertex graph pays millions of cells *per
/// trial*, where sharding even a 4-candidate tail scan is a real win.
/// Work, not candidate count, is the quantity spawn overhead competes
/// with.
const AUTO_WARM_WORK_FLOOR: u128 = 1 << 20;

/// Work floor for a **cold** size-1 scan — one that still has forks to
/// clone. Cloning a worker's evaluator costs an `O(|V|²)` (dense) or
/// `O(Σ ball)` (sparse) memcpy, so the first sharded scan must be ~4×
/// larger before the one-off warmup pays for itself; matches the old
/// 256-vs-64 candidate ratio.
const AUTO_COLD_WORK_FLOOR: u128 = 1 << 22;

/// Below this many candidates `Auto` never shards: the per-shard tracker
/// merge and spawn bookkeeping cannot win on a handful of trials, however
/// expensive each one is (a 3-candidate scan saturates at 3 workers and
/// still pays 2 spawns + merges to halve a cost the caller pays once).
const AUTO_MIN_CANDIDATES: usize = 4;

/// Worker count for a size-1 scan over `n` candidates. `warm` means the
/// run's [`ForkSet`] is already populated, i.e. sharding no longer pays
/// per-worker clones; `per_trial_cost` is the evaluator's estimated
/// distance-cell visits per trial, which makes the decision
/// backend-aware: ball-bounded sparse trials need many more candidates to
/// amortize a spawn than `O(|V|)`-row dense trials. The decision never
/// affects outputs — the sharded scan is bit-for-bit the sequential one —
/// only wall-clock, so `Auto` may pick differently on different machines,
/// steps, or backends without breaking determinism of results.
pub(crate) fn scan_workers(
    parallelism: Parallelism,
    n: usize,
    warm: bool,
    per_trial_cost: usize,
) -> usize {
    if parallelism.is_adaptive() {
        let floor = if warm { AUTO_WARM_WORK_FLOOR } else { AUTO_COLD_WORK_FLOOR };
        let work = n as u128 * per_trial_cost.max(1) as u128;
        if n < AUTO_MIN_CANDIDATES || work < floor {
            return 1;
        }
    }
    parallelism.workers().min(n.max(1))
}

/// Trials every edge of `scanned` (size-1 moves), offering each to
/// `tracker` under global indices `0..scanned.len()`, sharded across
/// workers per `config.parallelism`. When `keep_singles` is set, every
/// `(edge, assessment)` lands in `singles` in candidate order (the beam
/// ranking needs them later). Returns the number of trials performed.
///
/// Shard 0 scans on the calling thread against `ev` itself; shards 1..w
/// scan against the run's persistent forks ([`ForkSet`]) — cloned here on
/// the first sharded scan (warmup), byte-identical to `ev` ever after, so
/// no `O(|V|²)` state moves once the run is warm.
#[allow(clippy::too_many_arguments)]
fn scan_singles(
    ev: &mut OpacityEvaluator,
    forks: &mut ForkSet,
    scanned: &[Edge],
    kind: MoveKind,
    tracker: &mut BestTracker,
    tb: &TieBreak,
    config: &AnonymizeConfig,
    keep_singles: bool,
    singles: &mut Vec<(Edge, LoAssessment)>,
) -> u64 {
    let workers = scan_workers(
        config.parallelism,
        scanned.len(),
        forks.warm(),
        ev.estimated_trial_cost(),
    );
    if workers <= 1 {
        for (idx, &e) in scanned.iter().enumerate() {
            let a = match kind {
                MoveKind::Remove => ev.trial_remove(e),
                MoveKind::Insert => ev.trial_insert(e),
            };
            tracker.offer(&[idx], &[e], a, tb);
            if keep_singles {
                singles.push((e, a));
            }
        }
    } else {
        forks.ensure(ev, workers - 1);
        forks.debug_assert_in_sync(ev);
        let mut states: Vec<&mut OpacityEvaluator> = Vec::with_capacity(workers);
        states.push(ev);
        states.extend(forks.first_mut(workers - 1).iter_mut());
        let shards = pool::run_sharded_with(scanned, &mut states, |offset, shard, ev| {
            let mut shard_tracker = BestTracker::new();
            let mut shard_singles =
                Vec::with_capacity(if keep_singles { shard.len() } else { 0 });
            for (k, &e) in shard.iter().enumerate() {
                let a = match kind {
                    MoveKind::Remove => ev.trial_remove(e),
                    MoveKind::Insert => ev.trial_insert(e),
                };
                shard_tracker.offer(&[offset + k], &[e], a, tb);
                if keep_singles {
                    shard_singles.push((e, a));
                }
            }
            (shard_tracker, shard_singles)
        });
        // Shards come back in offset order, so `singles` concatenates to
        // exactly the sequential candidate order.
        for (shard_tracker, shard_singles) in shards {
            tracker.merge(shard_tracker);
            singles.extend(shard_singles);
        }
    }
    scanned.len() as u64
}

/// Evaluates every size-`size` combination of `candidates` (in index
/// order), offering each to the tracker. Prefix edges are applied and
/// undone via the evaluator's journal; the last edge of each combo is a
/// pure trial. Combos share mutable evaluator state, so this path stays
/// sequential.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_combos(
    ev: &mut OpacityEvaluator,
    candidates: &[Edge],
    size: usize,
    kind: MoveKind,
    tracker: &mut BestTracker,
    tb: &TieBreak,
    trials: &mut u64,
    trial_budget: Option<u64>,
) {
    let mut stack = Vec::with_capacity(size);
    let mut indices = Vec::with_capacity(size);
    recurse(
        ev, candidates, 0, size, &mut stack, &mut indices, kind, tracker, tb, trials,
        trial_budget,
    );
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    ev: &mut OpacityEvaluator,
    candidates: &[Edge],
    start: usize,
    size: usize,
    stack: &mut Vec<Edge>,
    indices: &mut Vec<usize>,
    kind: MoveKind,
    tracker: &mut BestTracker,
    tb: &TieBreak,
    trials: &mut u64,
    trial_budget: Option<u64>,
) {
    let exhausted = |trials: &u64| trial_budget.is_some_and(|cap| *trials >= cap);
    if stack.len() + 1 == size {
        for (idx, &e) in candidates.iter().enumerate().skip(start) {
            if exhausted(trials) {
                return; // budget hit mid-scan: keep the best found so far
            }
            let a = match kind {
                MoveKind::Remove => ev.trial_remove(e),
                MoveKind::Insert => ev.trial_insert(e),
            };
            *trials += 1;
            stack.push(e);
            indices.push(idx);
            tracker.offer(indices, stack, a, tb);
            stack.pop();
            indices.pop();
        }
    } else {
        for idx in start..candidates.len() {
            if exhausted(trials) {
                return;
            }
            let e = candidates[idx];
            let token = match kind {
                MoveKind::Remove => ev.apply_remove(e),
                MoveKind::Insert => ev.apply_insert(e),
            };
            stack.push(e);
            indices.push(idx);
            recurse(
                ev, candidates, idx + 1, size, stack, indices, kind, tracker, tb, trials,
                trial_budget,
            );
            stack.pop();
            indices.pop();
            ev.undo(token);
        }
    }
}

/// Chooses the next move per the configured look-ahead policy. Returns
/// `None` when `candidates` is empty.
#[allow(clippy::too_many_arguments)]
pub(crate) fn choose_move(
    ev: &mut OpacityEvaluator,
    forks: &mut ForkSet,
    candidates: &[Edge],
    current: LoAssessment,
    config: &AnonymizeConfig,
    kind: MoveKind,
    rng: &mut StdRng,
    trials: &mut u64,
) -> Option<(Vec<Edge>, LoAssessment)> {
    if candidates.is_empty() {
        return None;
    }
    // One nonce per greedy step, drawn before any scanning: sequential and
    // sharded scans advance the run RNG identically.
    let tb = TieBreak::from_rng(rng);
    let max_size = config.lookahead.min(candidates.len());

    // Size-1 scan, shared by both modes; per-candidate assessments are kept
    // only when a beam must be ranked later. A trial budget truncates the
    // scan to a *prefix* of the candidate list — computing that prefix up
    // front (instead of checking per trial) is what lets the sharded scan
    // evaluate exactly the candidates the sequential one would.
    let mut tracker = BestTracker::new();
    let keep_singles = max_size > 1 && config.lookahead_beam.is_some();
    let limit = match config.max_trials {
        Some(cap) => (cap.saturating_sub(*trials)).min(candidates.len() as u64) as usize,
        None => candidates.len(),
    };
    let mut singles: Vec<(Edge, LoAssessment)> =
        Vec::with_capacity(if keep_singles { limit } else { 0 });
    *trials += scan_singles(
        ev,
        forks,
        &candidates[..limit],
        kind,
        &mut tracker,
        &tb,
        config,
        keep_singles,
        &mut singles,
    );

    // The candidate pool for multi-edge combinations: everything, or the
    // `beam` most promising single moves.
    let beamed: Vec<Edge>;
    let pool: &[Edge] = match config.lookahead_beam {
        Some(beam) if singles.len() > beam => {
            singles.sort_by(|(_, x), (_, y)| {
                x.cmp_value(y).then(x.n_at_max().cmp(&y.n_at_max()))
            });
            beamed = singles.iter().take(beam).map(|&(e, _)| e).collect();
            &beamed
        }
        _ => candidates,
    };

    match config.lookahead_mode {
        LookaheadMode::Escalating => {
            let mut overall = tracker.take();
            if let Some((_, a)) = &overall {
                if a.better_than(&current) {
                    // A beneficial single move exists: no escalation
                    // (Section 5's first reading).
                    return overall;
                }
            }
            for size in 2..=max_size {
                if config.max_trials.is_some_and(|cap| *trials >= cap) {
                    break; // budget spent: do not escalate further
                }
                let mut tracker = BestTracker::new();
                scan_combos(ev, pool, size, kind, &mut tracker, &tb, trials, config.max_trials);
                if let Some((combo, a)) = tracker.take() {
                    let replace = match &overall {
                        None => true,
                        Some((_, oa)) => a.better_than(oa),
                    };
                    if replace {
                        overall = Some((combo, a));
                    }
                    if a.better_than(&current) {
                        return overall;
                    }
                }
            }
            overall
        }
        LookaheadMode::Exhaustive => {
            for size in 2..=max_size {
                if config.max_trials.is_some_and(|cap| *trials >= cap) {
                    break;
                }
                scan_combos(ev, pool, size, kind, &mut tracker, &tb, trials, config.max_trials);
            }
            tracker.take()
        }
    }
}

/// **Algorithm 4**: anonymize `graph` by greedy edge removal until
/// `maxLO <= θ` (or candidates/steps run out).
///
/// Thin compatibility wrapper over the session API; the output is
/// bit-for-bit identical (asserted in `tests/tests/session_api.rs`), but a
/// session amortizes the evaluator build across runs and sweeps.
#[deprecated(
    since = "0.2.0",
    note = "use `Anonymizer::new(graph, spec).config(*config).run(Removal)` — identical output, \
            reusable APSP build"
)]
pub fn edge_removal(
    graph: &Graph,
    spec: &TypeSpec,
    config: &AnonymizeConfig,
) -> AnonymizationOutcome {
    crate::session::Anonymizer::new(graph, spec)
        .config(*config)
        .run_once(crate::strategy::Removal)
}

#[cfg(test)]
#[allow(deprecated)] // pins the wrapper's behavior, not the session's
mod tests {
    use super::*;
    use crate::opacity::opacity_report;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn achieves_theta_on_paper_graph_l1() {
        let original = paper_graph();
        let config = AnonymizeConfig::new(1, 0.5).with_seed(1);
        let out = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        assert!(out.achieved, "{out}");
        assert!(out.inserted.is_empty());
        let report = crate::opacity::opacity_report_against_original(
            &original,
            &out.graph,
            &TypeSpec::DegreePairs,
            1,
        );
        assert!(report.max_lo.satisfies(0.5), "final LO {}", report.max_lo);
    }

    #[test]
    fn theta_one_needs_no_work() {
        let config = AnonymizeConfig::new(1, 1.0);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
        assert_eq!(out.graph, paper_graph());
    }

    #[test]
    fn theta_zero_empties_typed_linkage() {
        // θ = 0 demands no typed pair within L at all.
        let config = AnonymizeConfig::new(1, 0.0).with_seed(3);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        assert_eq!(out.graph.num_edges(), 0, "every edge is a within-1 typed pair");
    }

    #[test]
    fn types_use_original_degrees_throughout() {
        // After removals change degrees, opacity is still measured against
        // the original degree types; re-building types from the *anonymized*
        // graph may legitimately differ.
        let config = AnonymizeConfig::new(1, 0.4).with_seed(5);
        let original = paper_graph();
        let out = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        let frozen = crate::types::TypeSystem::build(&original, &TypeSpec::DegreePairs);
        let dist = lopacity_apsp::ApspEngine::TruncatedBfs.compute(&out.graph, 1);
        let counts = crate::opacity::count_within_l(&dist, &frozen, 1);
        let a = LoAssessment::from_counts(&counts, frozen.denominators());
        assert!(a.satisfies(0.4));
    }

    #[test]
    fn removal_is_deterministic_per_seed() {
        let config = AnonymizeConfig::new(1, 0.3).with_seed(11);
        let a = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        let b = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert_eq!(a.removed, b.removed);
    }

    #[test]
    fn max_steps_caps_the_run() {
        let config = AnonymizeConfig::new(1, 0.0).with_max_steps(2);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(!out.achieved);
        assert_eq!(out.steps, 2);
        assert_eq!(out.removed.len(), 2);
    }

    #[test]
    fn lookahead_two_explores_more() {
        let base = AnonymizeConfig::new(2, 0.3).with_seed(2);
        let out1 = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &base);
        let out2 = edge_removal(
            &paper_graph(),
            &TypeSpec::DegreePairs,
            &base.with_lookahead(2).with_mode(LookaheadMode::Exhaustive),
        );
        assert!(out2.trials >= out1.trials);
        assert!(out2.achieved);
    }

    #[test]
    fn l2_respects_two_hop_linkage() {
        let config = AnonymizeConfig::new(2, 0.5).with_seed(7);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        let report = opacity_report(&out.graph, &TypeSpec::DegreePairs, 2);
        // Note: report re-derives types from the anonymized graph's degrees;
        // the run guarantee is for original-degree types (checked via
        // `types_use_original_degrees_throughout`), so only sanity-check
        // that distances actually shrank here.
        assert!(!out.removed.is_empty());
        let _ = report;
    }

    /// Pins the `Auto` sequential-fallback decision function (issue 5
    /// satellite): `Fixed`/`Off` resolve as before; `Auto` weighs
    /// *estimated work* (candidates × per-trial cell visits) against the
    /// warm/cold floors, so ball-bounded sparse trials need far more
    /// candidates to shard than `O(|V|)`-row dense trials.
    #[test]
    fn scan_worker_decision_is_pinned() {
        use lopacity_util::Parallelism::*;
        // Representative per-trial costs: a dense trial on the smoke-bench
        // graph (ball ≈ 40, n = 500) visits ~20k cells; the same graph's
        // sparse trials visit ~1.6k (ball²).
        const DENSE_COST: usize = 20_000;
        const SPARSE_COST: usize = 1_600;
        // Off and Fixed ignore warmth and cost entirely.
        for warm in [false, true] {
            for cost in [1usize, SPARSE_COST, DENSE_COST] {
                assert_eq!(scan_workers(Off, 10_000, warm, cost), 1);
                assert_eq!(scan_workers(Fixed(4), 10, warm, cost), 4);
                assert_eq!(scan_workers(Fixed(4), 3, warm, cost), 3, "capped at candidates");
                assert_eq!(scan_workers(Fixed(1), 500, warm, cost), 1);
            }
        }
        // Auto, warm, dense-cost trials: the work floor (2²⁰ cells) is the
        // same ballpark as the old 64-candidate cutoff — 52 here.
        assert_eq!(scan_workers(Auto, 52, true, DENSE_COST), 1);
        assert!(scan_workers(Auto, 53, true, DENSE_COST) >= 1);
        // Auto, warm, sparse-cost trials: ball-bounded trials are ~12×
        // cheaper, so the same floor needs ~12× the candidates — the old
        // fixed 64 cutoff would have sharded pure spawn overhead.
        assert_eq!(scan_workers(Auto, 64, true, SPARSE_COST), 1);
        assert_eq!(scan_workers(Auto, 655, true, SPARSE_COST), 1);
        assert!(scan_workers(Auto, 656, true, SPARSE_COST) >= 1);
        // Cold scans (warmup still clones forks) need 4× the work.
        assert_eq!(scan_workers(Auto, 209, false, DENSE_COST), 1);
        assert!(scan_workers(Auto, 210, false, DENSE_COST) >= 1);
        assert!(AUTO_WARM_WORK_FLOOR < AUTO_COLD_WORK_FLOOR);
        // A huge per-trial cost (dense 10⁵-vertex graph: ~4M cells) makes
        // even a tiny tail scan worth sharding — but never below the
        // absolute candidate floor.
        let huge = 4_000_000usize;
        assert!(scan_workers(Auto, AUTO_MIN_CANDIDATES, true, huge) >= 1);
        assert_eq!(scan_workers(Auto, AUTO_MIN_CANDIDATES - 1, true, huge), 1);
        // Machine-independent part of the resolution: Auto above the floor
        // resolves to available_parallelism capped by candidates.
        let cores = Auto.workers();
        assert_eq!(scan_workers(Auto, 10_000, true, DENSE_COST), cores.min(10_000));
        assert_eq!(scan_workers(Auto, 656, true, SPARSE_COST), cores.min(656));
    }

    #[test]
    fn empty_graph_is_instantly_opaque() {
        let g = Graph::new(5);
        let out = edge_removal(&g, &TypeSpec::DegreePairs, &AnonymizeConfig::new(1, 0.0));
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
    }
}
