//! Algorithm 4: greedy **Edge Removal** with look-ahead.
//!
//! Each step evaluates the removal of every candidate edge, choosing the
//! move that minimizes `(maxLO, N(maxLO))` lexicographically; exact ties
//! are broken uniformly at random with the reservoir counter of Algorithm 4
//! (lines 14–18). With look-ahead `la > 1`, combinations of up to `la`
//! edges enter the search space (see [`crate::config::LookaheadMode`] for
//! the two explored readings of the paper's description). The loop ends
//! when `maxLO <= θ` or no removable edge remains.

use crate::config::{AnonymizeConfig, LookaheadMode};
use crate::evaluator::OpacityEvaluator;
use crate::lo::LoAssessment;
use crate::result::AnonymizationOutcome;
use crate::types::TypeSpec;
use lopacity_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which elementary move a combo scan performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MoveKind {
    Remove,
    Insert,
}

/// Streaming argmin over candidate combos with Algorithm 4's reservoir
/// tie-break: ties (same exact `maxLO` *and* same `N`) among equal-size
/// combos are resolved uniformly at random; larger combos never displace an
/// equally good smaller one.
pub(crate) struct BestTracker {
    best: Option<(Vec<Edge>, LoAssessment)>,
    ties: u64,
}

impl BestTracker {
    pub(crate) fn new() -> Self {
        BestTracker { best: None, ties: 0 }
    }

    pub(crate) fn offer(&mut self, combo: &[Edge], a: LoAssessment, rng: &mut StdRng) {
        match &mut self.best {
            None => {
                self.best = Some((combo.to_vec(), a));
                self.ties = 1;
            }
            Some((best_combo, best_a)) => {
                if a.better_than(best_a) {
                    best_combo.clear();
                    best_combo.extend_from_slice(combo);
                    *best_a = a;
                    self.ties = 1;
                } else if a.ties_with(best_a) && combo.len() == best_combo.len() {
                    self.ties += 1;
                    if rng.random::<f64>() < 1.0 / self.ties as f64 {
                        best_combo.clear();
                        best_combo.extend_from_slice(combo);
                        *best_a = a;
                    }
                }
            }
        }
    }

    pub(crate) fn take(self) -> Option<(Vec<Edge>, LoAssessment)> {
        self.best
    }
}

/// Evaluates every size-`size` combination of `candidates` (in index
/// order), offering each to the tracker. Prefix edges are applied and
/// undone via the evaluator's journal; the last edge of each combo is a
/// pure trial.
pub(crate) fn scan_combos(
    ev: &mut OpacityEvaluator,
    candidates: &[Edge],
    size: usize,
    kind: MoveKind,
    tracker: &mut BestTracker,
    rng: &mut StdRng,
    trials: &mut u64,
    trial_budget: Option<u64>,
) {
    let mut stack = Vec::with_capacity(size);
    recurse(ev, candidates, 0, size, &mut stack, kind, tracker, rng, trials, trial_budget);
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    ev: &mut OpacityEvaluator,
    candidates: &[Edge],
    start: usize,
    size: usize,
    stack: &mut Vec<Edge>,
    kind: MoveKind,
    tracker: &mut BestTracker,
    rng: &mut StdRng,
    trials: &mut u64,
    trial_budget: Option<u64>,
) {
    let exhausted = |trials: &u64| trial_budget.is_some_and(|cap| *trials >= cap);
    if stack.len() + 1 == size {
        for &e in &candidates[start..] {
            if exhausted(trials) {
                return; // budget hit mid-scan: keep the best found so far
            }
            let a = match kind {
                MoveKind::Remove => ev.trial_remove(e),
                MoveKind::Insert => ev.trial_insert(e),
            };
            *trials += 1;
            stack.push(e);
            tracker.offer(stack, a, rng);
            stack.pop();
        }
    } else {
        for idx in start..candidates.len() {
            if exhausted(trials) {
                return;
            }
            let e = candidates[idx];
            let token = match kind {
                MoveKind::Remove => ev.apply_remove(e),
                MoveKind::Insert => ev.apply_insert(e),
            };
            stack.push(e);
            recurse(ev, candidates, idx + 1, size, stack, kind, tracker, rng, trials, trial_budget);
            stack.pop();
            ev.undo(token);
        }
    }
}

/// Chooses the next move per the configured look-ahead policy. Returns
/// `None` when `candidates` is empty.
pub(crate) fn choose_move(
    ev: &mut OpacityEvaluator,
    candidates: &[Edge],
    current: LoAssessment,
    config: &AnonymizeConfig,
    kind: MoveKind,
    rng: &mut StdRng,
    trials: &mut u64,
) -> Option<(Vec<Edge>, LoAssessment)> {
    if candidates.is_empty() {
        return None;
    }
    let max_size = config.lookahead.min(candidates.len());

    // Size-1 scan, shared by both modes; per-candidate assessments are kept
    // only when a beam must be ranked later.
    let mut tracker = BestTracker::new();
    let keep_singles = max_size > 1 && config.lookahead_beam.is_some();
    let mut singles: Vec<(Edge, LoAssessment)> =
        Vec::with_capacity(if keep_singles { candidates.len() } else { 0 });
    for &e in candidates {
        if config.max_trials.is_some_and(|cap| *trials >= cap) {
            break;
        }
        let a = match kind {
            MoveKind::Remove => ev.trial_remove(e),
            MoveKind::Insert => ev.trial_insert(e),
        };
        *trials += 1;
        tracker.offer(&[e], a, rng);
        if keep_singles {
            singles.push((e, a));
        }
    }

    // The candidate pool for multi-edge combinations: everything, or the
    // `beam` most promising single moves.
    let beamed: Vec<Edge>;
    let pool: &[Edge] = match config.lookahead_beam {
        Some(beam) if singles.len() > beam => {
            singles.sort_by(|(_, x), (_, y)| {
                x.cmp_value(y).then(x.n_at_max().cmp(&y.n_at_max()))
            });
            beamed = singles.iter().take(beam).map(|&(e, _)| e).collect();
            &beamed
        }
        _ => candidates,
    };

    match config.lookahead_mode {
        LookaheadMode::Escalating => {
            let mut overall = tracker.take();
            if let Some((_, a)) = &overall {
                if a.better_than(&current) {
                    // A beneficial single move exists: no escalation
                    // (Section 5's first reading).
                    return overall;
                }
            }
            for size in 2..=max_size {
                if config.max_trials.is_some_and(|cap| *trials >= cap) {
                    break; // budget spent: do not escalate further
                }
                let mut tracker = BestTracker::new();
                scan_combos(ev, pool, size, kind, &mut tracker, rng, trials, config.max_trials);
                if let Some((combo, a)) = tracker.take() {
                    let replace = match &overall {
                        None => true,
                        Some((_, oa)) => a.better_than(oa),
                    };
                    if replace {
                        overall = Some((combo, a));
                    }
                    if a.better_than(&current) {
                        return overall;
                    }
                }
            }
            overall
        }
        LookaheadMode::Exhaustive => {
            for size in 2..=max_size {
                if config.max_trials.is_some_and(|cap| *trials >= cap) {
                    break;
                }
                scan_combos(ev, pool, size, kind, &mut tracker, rng, trials, config.max_trials);
            }
            tracker.take()
        }
    }
}

/// **Algorithm 4**: anonymize `graph` by greedy edge removal until
/// `maxLO <= θ` (or candidates/steps run out).
pub fn edge_removal(
    graph: &Graph,
    spec: &TypeSpec,
    config: &AnonymizeConfig,
) -> AnonymizationOutcome {
    let mut ev = OpacityEvaluator::with_engine(graph.clone(), spec, config.l, config.engine);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut removed = Vec::new();
    let mut steps = 0usize;
    let mut trials = 0u64;
    let mut achieved = ev.assessment().satisfies(config.theta);
    while !achieved && ev.graph().num_edges() > 0 {
        if config.max_steps.is_some_and(|cap| steps >= cap)
            || config.max_trials.is_some_and(|cap| trials >= cap)
        {
            break;
        }
        let current = ev.assessment();
        let candidates = ev.graph().edge_vec();
        let Some((combo, _)) =
            choose_move(&mut ev, &candidates, current, config, MoveKind::Remove, &mut rng, &mut trials)
        else {
            break;
        };
        for e in combo {
            let _committed = ev.apply_remove(e);
            removed.push(e);
        }
        steps += 1;
        achieved = ev.assessment().satisfies(config.theta);
    }
    let final_a = ev.assessment();
    AnonymizationOutcome {
        graph: ev.into_graph(),
        removed,
        inserted: Vec::new(),
        steps,
        trials,
        final_lo: final_a.as_f64(),
        final_n_at_max: final_a.n_at_max(),
        achieved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opacity::opacity_report;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn achieves_theta_on_paper_graph_l1() {
        let original = paper_graph();
        let config = AnonymizeConfig::new(1, 0.5).with_seed(1);
        let out = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        assert!(out.achieved, "{out}");
        assert!(out.inserted.is_empty());
        let report = crate::opacity::opacity_report_against_original(
            &original,
            &out.graph,
            &TypeSpec::DegreePairs,
            1,
        );
        assert!(report.max_lo.satisfies(0.5), "final LO {}", report.max_lo);
    }

    #[test]
    fn theta_one_needs_no_work() {
        let config = AnonymizeConfig::new(1, 1.0);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
        assert_eq!(out.graph, paper_graph());
    }

    #[test]
    fn theta_zero_empties_typed_linkage() {
        // θ = 0 demands no typed pair within L at all.
        let config = AnonymizeConfig::new(1, 0.0).with_seed(3);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        assert_eq!(out.graph.num_edges(), 0, "every edge is a within-1 typed pair");
    }

    #[test]
    fn types_use_original_degrees_throughout() {
        // After removals change degrees, opacity is still measured against
        // the original degree types; re-building types from the *anonymized*
        // graph may legitimately differ.
        let config = AnonymizeConfig::new(1, 0.4).with_seed(5);
        let original = paper_graph();
        let out = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        let frozen = crate::types::TypeSystem::build(&original, &TypeSpec::DegreePairs);
        let dist = lopacity_apsp::ApspEngine::TruncatedBfs.compute(&out.graph, 1);
        let counts = crate::opacity::count_within_l(&dist, &frozen, 1);
        let a = LoAssessment::from_counts(&counts, frozen.denominators());
        assert!(a.satisfies(0.4));
    }

    #[test]
    fn removal_is_deterministic_per_seed() {
        let config = AnonymizeConfig::new(1, 0.3).with_seed(11);
        let a = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        let b = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert_eq!(a.removed, b.removed);
    }

    #[test]
    fn max_steps_caps_the_run() {
        let config = AnonymizeConfig::new(1, 0.0).with_max_steps(2);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(!out.achieved);
        assert_eq!(out.steps, 2);
        assert_eq!(out.removed.len(), 2);
    }

    #[test]
    fn lookahead_two_explores_more() {
        let base = AnonymizeConfig::new(2, 0.3).with_seed(2);
        let out1 = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &base);
        let out2 = edge_removal(
            &paper_graph(),
            &TypeSpec::DegreePairs,
            &base.with_lookahead(2).with_mode(LookaheadMode::Exhaustive),
        );
        assert!(out2.trials >= out1.trials);
        assert!(out2.achieved);
    }

    #[test]
    fn l2_respects_two_hop_linkage() {
        let config = AnonymizeConfig::new(2, 0.5).with_seed(7);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        let report = opacity_report(&out.graph, &TypeSpec::DegreePairs, 2);
        // Note: report re-derives types from the anonymized graph's degrees;
        // the run guarantee is for original-degree types (checked via
        // `types_use_original_degrees_throughout`), so only sanity-check
        // that distances actually shrank here.
        assert!(!out.removed.is_empty());
        let _ = report;
    }

    #[test]
    fn empty_graph_is_instantly_opaque() {
        let g = Graph::new(5);
        let out = edge_removal(&g, &TypeSpec::DegreePairs, &AnonymizeConfig::new(1, 0.0));
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
    }
}
