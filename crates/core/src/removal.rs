//! Algorithm 4: greedy **Edge Removal** with look-ahead — the shared
//! move-selection machinery, plus the deprecated free-function entry point
//! (the maintained surface is [`crate::Anonymizer`] running
//! [`crate::strategy::Removal`]; the greedy loop itself lives in
//! [`crate::strategy::drive_greedy`]).
//!
//! Each step evaluates the removal of every candidate edge, choosing the
//! move that minimizes `(maxLO, N(maxLO))` lexicographically; exact ties
//! are broken uniformly at random per Algorithm 4 (lines 14–18), realized
//! here as the order-independent seeded priority of the internal
//! `tracker` module.
//! With look-ahead `la > 1`, combinations of up to `la` edges enter the
//! search space (see [`crate::config::LookaheadMode`] for the two explored
//! readings of the paper's description). The loop ends when `maxLO <= θ`
//! or no removable edge remains.
//!
//! # The sharded candidate scan
//!
//! The single-edge scan — every candidate trialed through the incremental
//! [`OpacityEvaluator`] — dominates the runtime of both heuristics. Under
//! [`crate::config::AnonymizeConfig::parallelism`] it is sharded across a
//! scoped-thread pool ([`lopacity_util::pool`]): the candidate list splits
//! into contiguous shards, each worker trials its shard against a
//! **persistent evaluator fork** (internal `forks` module: cloned once
//! per run at warmup, then kept state-identical by replaying each
//! committed move's [`crate::evaluator::CommitDelta`] in O(changed
//! cells) — never re-cloned per step), and
//! feeds a private `BestTracker`; the per-shard winners then merge. The
//! merged argmin is **bit-for-bit the sequential scan's choice** for every
//! worker count because the tracker's total order — `(maxLO, N, combo
//! size, seeded key, global candidate index)` — is a pure function of the
//! candidate set and the per-step nonce, never of scan order or thread
//! scheduling; the nonce is drawn exactly once per step, so the run RNG
//! evolves identically too. Multi-edge look-ahead combos share prefix
//! apply/undo state and remain sequential.

use crate::config::{AnonymizeConfig, LookaheadMode};
use crate::evaluator::OpacityEvaluator;
use crate::forks::ForkSet;
use crate::lo::LoAssessment;
use crate::result::AnonymizationOutcome;
use crate::strategy::MoveKind;
use crate::tracker::{BestTracker, TieBreak};
use crate::types::TypeSpec;
use lopacity_graph::{Edge, Graph};
use lopacity_util::{pool, Parallelism};
use rand::rngs::StdRng;

/// Fewest candidates for which [`Parallelism::Auto`] shards a **cold**
/// size-1 scan — one that still has forks to clone. The `O(|V|²)` clone
/// per missing worker dwarfs thread-spawn costs, and a scan shorter than
/// a few hundred trials cannot amortize it; 256 was measured for the
/// per-step-clone design of PR 2 and still bounds the (one-off) warmup
/// case, so it is kept for the first scan of a run.
const AUTO_COLD_MIN_CANDIDATES: usize = 256;

/// Fewest candidates for which [`Parallelism::Auto`] shards a **warm**
/// size-1 scan — persistent forks already exist, so sharding pays only
/// scoped-thread spawn/join (~10–20 µs per worker). One incremental trial
/// costs on the order of the affected-source BFS re-runs — roughly a
/// microsecond or more even on small graphs, tens of microseconds at
/// ACM scale — so 64 candidates split across a handful of workers
/// amortize spawn overhead with margin. The old fixed 256 cutoff was
/// sized around the per-step clone this PR removed; keeping it warm
/// would leave 64–255-candidate scans (the *entire tail* of a removal
/// run, where most steps live) sequential for no reason.
const AUTO_WARM_MIN_CANDIDATES: usize = 64;

/// Worker count for a size-1 scan over `n` candidates. `warm` means the
/// run's [`ForkSet`] is already populated, i.e. sharding no longer pays
/// per-worker `O(|V|²)` clones. The decision never affects outputs — the
/// sharded scan is bit-for-bit the sequential one — only wall-clock, so
/// `Auto` may pick differently on different machines or steps without
/// breaking determinism of results.
pub(crate) fn scan_workers(parallelism: Parallelism, n: usize, warm: bool) -> usize {
    let floor = if warm { AUTO_WARM_MIN_CANDIDATES } else { AUTO_COLD_MIN_CANDIDATES };
    parallelism.resolve(n, floor)
}

/// Trials every edge of `scanned` (size-1 moves), offering each to
/// `tracker` under global indices `0..scanned.len()`, sharded across
/// workers per `config.parallelism`. When `keep_singles` is set, every
/// `(edge, assessment)` lands in `singles` in candidate order (the beam
/// ranking needs them later). Returns the number of trials performed.
///
/// Shard 0 scans on the calling thread against `ev` itself; shards 1..w
/// scan against the run's persistent forks ([`ForkSet`]) — cloned here on
/// the first sharded scan (warmup), byte-identical to `ev` ever after, so
/// no `O(|V|²)` state moves once the run is warm.
#[allow(clippy::too_many_arguments)]
fn scan_singles(
    ev: &mut OpacityEvaluator,
    forks: &mut ForkSet,
    scanned: &[Edge],
    kind: MoveKind,
    tracker: &mut BestTracker,
    tb: &TieBreak,
    config: &AnonymizeConfig,
    keep_singles: bool,
    singles: &mut Vec<(Edge, LoAssessment)>,
) -> u64 {
    let workers = scan_workers(config.parallelism, scanned.len(), forks.warm());
    if workers <= 1 {
        for (idx, &e) in scanned.iter().enumerate() {
            let a = match kind {
                MoveKind::Remove => ev.trial_remove(e),
                MoveKind::Insert => ev.trial_insert(e),
            };
            tracker.offer(&[idx], &[e], a, tb);
            if keep_singles {
                singles.push((e, a));
            }
        }
    } else {
        forks.ensure(ev, workers - 1);
        forks.debug_assert_in_sync(ev);
        let mut states: Vec<&mut OpacityEvaluator> = Vec::with_capacity(workers);
        states.push(ev);
        states.extend(forks.first_mut(workers - 1).iter_mut());
        let shards = pool::run_sharded_with(scanned, &mut states, |offset, shard, ev| {
            let mut shard_tracker = BestTracker::new();
            let mut shard_singles =
                Vec::with_capacity(if keep_singles { shard.len() } else { 0 });
            for (k, &e) in shard.iter().enumerate() {
                let a = match kind {
                    MoveKind::Remove => ev.trial_remove(e),
                    MoveKind::Insert => ev.trial_insert(e),
                };
                shard_tracker.offer(&[offset + k], &[e], a, tb);
                if keep_singles {
                    shard_singles.push((e, a));
                }
            }
            (shard_tracker, shard_singles)
        });
        // Shards come back in offset order, so `singles` concatenates to
        // exactly the sequential candidate order.
        for (shard_tracker, shard_singles) in shards {
            tracker.merge(shard_tracker);
            singles.extend(shard_singles);
        }
    }
    scanned.len() as u64
}

/// Evaluates every size-`size` combination of `candidates` (in index
/// order), offering each to the tracker. Prefix edges are applied and
/// undone via the evaluator's journal; the last edge of each combo is a
/// pure trial. Combos share mutable evaluator state, so this path stays
/// sequential.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_combos(
    ev: &mut OpacityEvaluator,
    candidates: &[Edge],
    size: usize,
    kind: MoveKind,
    tracker: &mut BestTracker,
    tb: &TieBreak,
    trials: &mut u64,
    trial_budget: Option<u64>,
) {
    let mut stack = Vec::with_capacity(size);
    let mut indices = Vec::with_capacity(size);
    recurse(
        ev, candidates, 0, size, &mut stack, &mut indices, kind, tracker, tb, trials,
        trial_budget,
    );
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    ev: &mut OpacityEvaluator,
    candidates: &[Edge],
    start: usize,
    size: usize,
    stack: &mut Vec<Edge>,
    indices: &mut Vec<usize>,
    kind: MoveKind,
    tracker: &mut BestTracker,
    tb: &TieBreak,
    trials: &mut u64,
    trial_budget: Option<u64>,
) {
    let exhausted = |trials: &u64| trial_budget.is_some_and(|cap| *trials >= cap);
    if stack.len() + 1 == size {
        for (idx, &e) in candidates.iter().enumerate().skip(start) {
            if exhausted(trials) {
                return; // budget hit mid-scan: keep the best found so far
            }
            let a = match kind {
                MoveKind::Remove => ev.trial_remove(e),
                MoveKind::Insert => ev.trial_insert(e),
            };
            *trials += 1;
            stack.push(e);
            indices.push(idx);
            tracker.offer(indices, stack, a, tb);
            stack.pop();
            indices.pop();
        }
    } else {
        for idx in start..candidates.len() {
            if exhausted(trials) {
                return;
            }
            let e = candidates[idx];
            let token = match kind {
                MoveKind::Remove => ev.apply_remove(e),
                MoveKind::Insert => ev.apply_insert(e),
            };
            stack.push(e);
            indices.push(idx);
            recurse(
                ev, candidates, idx + 1, size, stack, indices, kind, tracker, tb, trials,
                trial_budget,
            );
            stack.pop();
            indices.pop();
            ev.undo(token);
        }
    }
}

/// Chooses the next move per the configured look-ahead policy. Returns
/// `None` when `candidates` is empty.
#[allow(clippy::too_many_arguments)]
pub(crate) fn choose_move(
    ev: &mut OpacityEvaluator,
    forks: &mut ForkSet,
    candidates: &[Edge],
    current: LoAssessment,
    config: &AnonymizeConfig,
    kind: MoveKind,
    rng: &mut StdRng,
    trials: &mut u64,
) -> Option<(Vec<Edge>, LoAssessment)> {
    if candidates.is_empty() {
        return None;
    }
    // One nonce per greedy step, drawn before any scanning: sequential and
    // sharded scans advance the run RNG identically.
    let tb = TieBreak::from_rng(rng);
    let max_size = config.lookahead.min(candidates.len());

    // Size-1 scan, shared by both modes; per-candidate assessments are kept
    // only when a beam must be ranked later. A trial budget truncates the
    // scan to a *prefix* of the candidate list — computing that prefix up
    // front (instead of checking per trial) is what lets the sharded scan
    // evaluate exactly the candidates the sequential one would.
    let mut tracker = BestTracker::new();
    let keep_singles = max_size > 1 && config.lookahead_beam.is_some();
    let limit = match config.max_trials {
        Some(cap) => (cap.saturating_sub(*trials)).min(candidates.len() as u64) as usize,
        None => candidates.len(),
    };
    let mut singles: Vec<(Edge, LoAssessment)> =
        Vec::with_capacity(if keep_singles { limit } else { 0 });
    *trials += scan_singles(
        ev,
        forks,
        &candidates[..limit],
        kind,
        &mut tracker,
        &tb,
        config,
        keep_singles,
        &mut singles,
    );

    // The candidate pool for multi-edge combinations: everything, or the
    // `beam` most promising single moves.
    let beamed: Vec<Edge>;
    let pool: &[Edge] = match config.lookahead_beam {
        Some(beam) if singles.len() > beam => {
            singles.sort_by(|(_, x), (_, y)| {
                x.cmp_value(y).then(x.n_at_max().cmp(&y.n_at_max()))
            });
            beamed = singles.iter().take(beam).map(|&(e, _)| e).collect();
            &beamed
        }
        _ => candidates,
    };

    match config.lookahead_mode {
        LookaheadMode::Escalating => {
            let mut overall = tracker.take();
            if let Some((_, a)) = &overall {
                if a.better_than(&current) {
                    // A beneficial single move exists: no escalation
                    // (Section 5's first reading).
                    return overall;
                }
            }
            for size in 2..=max_size {
                if config.max_trials.is_some_and(|cap| *trials >= cap) {
                    break; // budget spent: do not escalate further
                }
                let mut tracker = BestTracker::new();
                scan_combos(ev, pool, size, kind, &mut tracker, &tb, trials, config.max_trials);
                if let Some((combo, a)) = tracker.take() {
                    let replace = match &overall {
                        None => true,
                        Some((_, oa)) => a.better_than(oa),
                    };
                    if replace {
                        overall = Some((combo, a));
                    }
                    if a.better_than(&current) {
                        return overall;
                    }
                }
            }
            overall
        }
        LookaheadMode::Exhaustive => {
            for size in 2..=max_size {
                if config.max_trials.is_some_and(|cap| *trials >= cap) {
                    break;
                }
                scan_combos(ev, pool, size, kind, &mut tracker, &tb, trials, config.max_trials);
            }
            tracker.take()
        }
    }
}

/// **Algorithm 4**: anonymize `graph` by greedy edge removal until
/// `maxLO <= θ` (or candidates/steps run out).
///
/// Thin compatibility wrapper over the session API; the output is
/// bit-for-bit identical (asserted in `tests/tests/session_api.rs`), but a
/// session amortizes the evaluator build across runs and sweeps.
#[deprecated(
    since = "0.2.0",
    note = "use `Anonymizer::new(graph, spec).config(*config).run(Removal)` — identical output, \
            reusable APSP build"
)]
pub fn edge_removal(
    graph: &Graph,
    spec: &TypeSpec,
    config: &AnonymizeConfig,
) -> AnonymizationOutcome {
    crate::session::Anonymizer::new(graph, spec)
        .config(*config)
        .run_once(crate::strategy::Removal)
}

#[cfg(test)]
#[allow(deprecated)] // pins the wrapper's behavior, not the session's
mod tests {
    use super::*;
    use crate::opacity::opacity_report;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn achieves_theta_on_paper_graph_l1() {
        let original = paper_graph();
        let config = AnonymizeConfig::new(1, 0.5).with_seed(1);
        let out = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        assert!(out.achieved, "{out}");
        assert!(out.inserted.is_empty());
        let report = crate::opacity::opacity_report_against_original(
            &original,
            &out.graph,
            &TypeSpec::DegreePairs,
            1,
        );
        assert!(report.max_lo.satisfies(0.5), "final LO {}", report.max_lo);
    }

    #[test]
    fn theta_one_needs_no_work() {
        let config = AnonymizeConfig::new(1, 1.0);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
        assert_eq!(out.graph, paper_graph());
    }

    #[test]
    fn theta_zero_empties_typed_linkage() {
        // θ = 0 demands no typed pair within L at all.
        let config = AnonymizeConfig::new(1, 0.0).with_seed(3);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        assert_eq!(out.graph.num_edges(), 0, "every edge is a within-1 typed pair");
    }

    #[test]
    fn types_use_original_degrees_throughout() {
        // After removals change degrees, opacity is still measured against
        // the original degree types; re-building types from the *anonymized*
        // graph may legitimately differ.
        let config = AnonymizeConfig::new(1, 0.4).with_seed(5);
        let original = paper_graph();
        let out = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        let frozen = crate::types::TypeSystem::build(&original, &TypeSpec::DegreePairs);
        let dist = lopacity_apsp::ApspEngine::TruncatedBfs.compute(&out.graph, 1);
        let counts = crate::opacity::count_within_l(&dist, &frozen, 1);
        let a = LoAssessment::from_counts(&counts, frozen.denominators());
        assert!(a.satisfies(0.4));
    }

    #[test]
    fn removal_is_deterministic_per_seed() {
        let config = AnonymizeConfig::new(1, 0.3).with_seed(11);
        let a = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        let b = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert_eq!(a.removed, b.removed);
    }

    #[test]
    fn max_steps_caps_the_run() {
        let config = AnonymizeConfig::new(1, 0.0).with_max_steps(2);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(!out.achieved);
        assert_eq!(out.steps, 2);
        assert_eq!(out.removed.len(), 2);
    }

    #[test]
    fn lookahead_two_explores_more() {
        let base = AnonymizeConfig::new(2, 0.3).with_seed(2);
        let out1 = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &base);
        let out2 = edge_removal(
            &paper_graph(),
            &TypeSpec::DegreePairs,
            &base.with_lookahead(2).with_mode(LookaheadMode::Exhaustive),
        );
        assert!(out2.trials >= out1.trials);
        assert!(out2.achieved);
    }

    #[test]
    fn l2_respects_two_hop_linkage() {
        let config = AnonymizeConfig::new(2, 0.5).with_seed(7);
        let out = edge_removal(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.achieved);
        let report = opacity_report(&out.graph, &TypeSpec::DegreePairs, 2);
        // Note: report re-derives types from the anonymized graph's degrees;
        // the run guarantee is for original-degree types (checked via
        // `types_use_original_degrees_throughout`), so only sanity-check
        // that distances actually shrank here.
        assert!(!out.removed.is_empty());
        let _ = report;
    }

    /// Pins the `Auto` sequential-fallback decision function (issue 4
    /// satellite): `Fixed`/`Off` resolve as before, `Auto` falls back
    /// below 256 candidates on a *cold* scan (per-worker clones still to
    /// pay) but already shards at 64 once the run's forks are warm.
    #[test]
    fn scan_worker_decision_is_pinned() {
        use lopacity_util::Parallelism::*;
        // Off and Fixed ignore warmth and the floor entirely.
        for warm in [false, true] {
            assert_eq!(scan_workers(Off, 10_000, warm), 1);
            assert_eq!(scan_workers(Fixed(4), 10, warm), 4);
            assert_eq!(scan_workers(Fixed(4), 3, warm), 3, "capped at candidate count");
            assert_eq!(scan_workers(Fixed(1), 500, warm), 1);
        }
        // Auto, cold: the 256 floor of the per-step-clone era still holds
        // (warmup is the one scan that still clones).
        assert_eq!(scan_workers(Auto, 255, false), 1);
        assert!(scan_workers(Auto, 256, false) >= 1);
        // Auto, warm: the floor drops to 64 — forks exist, sharding costs
        // spawn/join only.
        assert_eq!(scan_workers(Auto, 63, true), 1);
        assert!(scan_workers(Auto, 64, true) >= 1);
        // The warm floor is strictly below the cold one by design: the
        // removal tail (shrinking candidate lists) stays parallel.
        assert!(AUTO_WARM_MIN_CANDIDATES < AUTO_COLD_MIN_CANDIDATES);
        // Machine-independent part of the resolution: Auto at/above the
        // floor resolves to available_parallelism capped by candidates.
        let cores = Auto.workers();
        assert_eq!(scan_workers(Auto, 10_000, true), cores.min(10_000));
        assert_eq!(scan_workers(Auto, 64, true), cores.min(64));
    }

    #[test]
    fn empty_graph_is_instantly_opaque() {
        let g = Graph::new(5);
        let out = edge_removal(&g, &TypeSpec::DegreePairs, &AnonymizeConfig::new(1, 0.0));
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
    }
}
