//! Exact minimum-removal L-opacification for small instances.
//!
//! Section 4 notes the exhaustive approach — try all `O(2^{|V|^2})` edge
//! sets — before proving the problem NP-hard and resorting to heuristics.
//! This module implements a *practical* exact solver for the pure-removal
//! variant on small graphs: iterative deepening over the number of removals
//! with branch-and-bound pruning. It exists to measure the greedy
//! heuristics' optimality gap (the `optgap` ablation), not for production
//! use; cost is exponential by Theorem 1.
//!
//! Pruning: a subset of removals can only *shrink* each type's within-L
//! count, and removing one edge eliminates at most `cap(e)` currently
//! violating pairs. At depth `d` with budget `k`, if the most violated type
//! still needs more than `(k - d)` times the largest per-edge elimination
//! capacity, the branch is dead — a cheap admissible bound that keeps tiny
//! instances (≤ ~25 edges) tractable.

use crate::evaluator::OpacityEvaluator;
use crate::types::TypeSpec;
use lopacity_apsp::ApspEngine;
use lopacity_graph::{Edge, Graph};

/// Result of the exact search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// A minimum-cardinality removal set achieving `maxLO <= θ`.
    pub removals: Vec<Edge>,
    /// Nodes of the search tree explored (diagnostics).
    pub nodes_explored: u64,
}

/// Finds a *minimum-cardinality* edge-removal set making `graph`
/// `(l, theta)`-opaque, or `None` if even the empty graph fails (only
/// possible for `theta < 0`-style inputs; the empty graph always satisfies
/// `theta >= 0`).
///
/// # Panics
/// Panics when the graph has more than `max_edges` edges — the search is
/// exponential, and the cap (recommended ≤ 25) makes accidental misuse loud
/// rather than eternal.
pub fn exact_min_removals(
    graph: &Graph,
    spec: &TypeSpec,
    l: u8,
    theta: f64,
    max_edges: usize,
) -> Option<ExactSolution> {
    assert!(
        graph.num_edges() <= max_edges,
        "exact search on {} edges exceeds the safety cap {max_edges}",
        graph.num_edges()
    );
    let mut ev = OpacityEvaluator::with_engine(graph.clone(), spec, l, ApspEngine::default());
    let mut nodes = 0u64;
    if ev.assessment().satisfies(theta) {
        return Some(ExactSolution { removals: Vec::new(), nodes_explored: 1 });
    }
    let edges = graph.edge_vec();
    // Iterative deepening: the first depth with a solution is minimal.
    for budget in 1..=edges.len() {
        let mut chosen = Vec::with_capacity(budget);
        if search(&mut ev, &edges, 0, budget, theta, &mut chosen, &mut nodes) {
            return Some(ExactSolution { removals: chosen, nodes_explored: nodes });
        }
    }
    // Removing every edge yields the empty graph (LO = 0 <= θ for θ >= 0),
    // so the loop above always returns for valid θ.
    None
}

/// One iterative-deepening level of the exact search: does a removal set of
/// size `budget` drawn from `edges[start..]` reach `maxLO <= theta`? On
/// success `chosen` holds the set and the evaluator is restored; `nodes`
/// counts explored search-tree nodes. Shared by [`exact_min_removals`] and
/// the [`crate::strategy::ExactMinRemovals`] session strategy.
pub(crate) fn search(
    ev: &mut OpacityEvaluator,
    edges: &[Edge],
    start: usize,
    budget: usize,
    theta: f64,
    chosen: &mut Vec<Edge>,
    nodes: &mut u64,
) -> bool {
    *nodes += 1;
    if ev.assessment().satisfies(theta) {
        return true;
    }
    if budget == 0 || start >= edges.len() {
        return false;
    }
    // Bound: even removing `budget` more edges cannot fix a type that is
    // over-subscribed by more than budget (each removal eliminates at most
    // one within-L pair per type at L = 1; for L > 1 a removal can clear
    // many pairs, so the bound only applies at L = 1).
    if ev.l() == 1 {
        let denoms = ev.types().denominators();
        for (t, &count) in ev.counts().iter().enumerate() {
            let d = denoms[t];
            if d == 0 {
                continue;
            }
            let allowed = (theta * d as f64 + 1e-9).floor() as u64;
            if count > allowed + budget as u64 {
                return false; // this type cannot be repaired in time
            }
        }
    }
    // Branch: remaining edges must supply all `budget` removals.
    if edges.len() - start < budget {
        return false;
    }
    for idx in start..edges.len() {
        let e = edges[idx];
        if !ev.graph().has_edge(e.u(), e.v()) {
            continue;
        }
        let token = ev.apply_remove(e);
        chosen.push(e);
        if search(ev, edges, idx + 1, budget - 1, theta, chosen, nodes) {
            // `chosen` holds the solution; restore the evaluator so the
            // iterative-deepening driver can keep reusing it.
            ev.undo(token);
            return true;
        }
        chosen.pop();
        ev.undo(token);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opacity::opacity_report_against_original;
    use crate::{AnonymizeConfig, Anonymizer, Removal};

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn zero_removals_when_already_opaque() {
        let g = paper_graph();
        let sol = exact_min_removals(&g, &TypeSpec::DegreePairs, 1, 1.0, 25).unwrap();
        assert!(sol.removals.is_empty());
    }

    #[test]
    fn solution_is_valid_and_minimal_on_paper_graph() {
        let g = paper_graph();
        let theta = 0.5;
        let sol = exact_min_removals(&g, &TypeSpec::DegreePairs, 1, theta, 25).unwrap();
        // Validity.
        let mut h = g.clone();
        for e in &sol.removals {
            assert!(h.remove_edge(e.u(), e.v()));
        }
        let cert = opacity_report_against_original(&g, &h, &TypeSpec::DegreePairs, 1);
        assert!(cert.max_lo.satisfies(theta));
        // Minimality: by hand, θ=0.5 needs the P{1,3} edge gone, P{4,4}
        // down from 3 to 1 (2 removals) and P{2,4} from 4 to 3 (1 removal,
        // unless covered by side effects) — at least 3 removals; the greedy
        // finds 5. Check the exact optimum is sane and no worse than greedy.
        let greedy =
            Anonymizer::new(&g, &TypeSpec::DegreePairs).config(AnonymizeConfig::new(1, theta)).run(Removal);
        assert!(sol.removals.len() <= greedy.removed.len());
        assert!(sol.removals.len() >= 3, "optimum {} below hand bound", sol.removals.len());
    }

    #[test]
    fn exact_matches_brute_force_on_tiny_graphs() {
        // Cross-check against a naive subset enumeration.
        let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)])
            .unwrap();
        let theta = 0.4;
        let sol = exact_min_removals(&g, &TypeSpec::DegreePairs, 1, theta, 25).unwrap();
        let edges = g.edge_vec();
        let mut brute_best = usize::MAX;
        for mask in 0u32..(1 << edges.len()) {
            let mut h = g.clone();
            for (i, e) in edges.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    h.remove_edge(e.u(), e.v());
                }
            }
            let cert = opacity_report_against_original(&g, &h, &TypeSpec::DegreePairs, 1);
            if cert.max_lo.satisfies(theta) {
                brute_best = brute_best.min(mask.count_ones() as usize);
            }
        }
        assert_eq!(sol.removals.len(), brute_best);
    }

    #[test]
    fn works_for_l2() {
        let g = paper_graph();
        let sol = exact_min_removals(&g, &TypeSpec::DegreePairs, 2, 0.6, 25).unwrap();
        let mut h = g.clone();
        for e in &sol.removals {
            h.remove_edge(e.u(), e.v());
        }
        let cert = opacity_report_against_original(&g, &h, &TypeSpec::DegreePairs, 2);
        assert!(cert.max_lo.satisfies(0.6));
    }

    #[test]
    #[should_panic(expected = "safety cap")]
    fn rejects_oversized_inputs() {
        let g = lopacity_gen_free_graph();
        exact_min_removals(&g, &TypeSpec::DegreePairs, 1, 0.5, 5);
    }

    /// A 6-edge graph used only to trip the cap assertion.
    fn lopacity_gen_free_graph() -> Graph {
        Graph::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap()
    }
}
