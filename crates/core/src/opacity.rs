//! Opacity computation (paper Algorithm 1 and Figure 5).

use crate::lo::LoAssessment;
use crate::types::{TypeSpec, TypeSystem};
use lopacity_apsp::{ApspEngine, DistStore, DistanceMatrix, INF};
use lopacity_graph::Graph;

/// Per-type opacity row: `LO_G(T) = |{pairs of T within L}| / |T|`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeOpacity {
    /// Type identifier.
    pub type_id: u32,
    /// Human-readable label (`P{g,h}` for degree types).
    pub label: String,
    /// Number of pairs of this type with geodesic distance `<= L`.
    pub within_l: u64,
    /// `|T|`, including unreachable pairs.
    pub total: u64,
    /// The opacity value (0 for empty types).
    pub lo: f64,
}

/// Output of Algorithm 1: every type's opacity plus the maximum.
#[derive(Debug, Clone)]
pub struct OpacityReport {
    /// One row per non-empty type, ascending type id.
    pub per_type: Vec<TypeOpacity>,
    /// `max_T LO_G(T)` with its multiplicity `N(maxLO)`.
    pub max_lo: LoAssessment,
}

impl OpacityReport {
    /// Rows currently attaining the maximum opacity.
    pub fn argmax(&self) -> Vec<&TypeOpacity> {
        let (num, den) = self.max_lo.ratio();
        self.per_type
            .iter()
            .filter(|row| row.within_l as u128 * den as u128 == num as u128 * row.total as u128)
            .collect()
    }
}

/// Counts, per type, the pairs with distance `<= l` given a truncated
/// distance matrix. This is the core loop of Algorithm 1 (lines 3–6).
pub fn count_within_l(dist: &DistanceMatrix, types: &TypeSystem, l: u8) -> Vec<u64> {
    let mut counts = vec![0u64; types.num_types()];
    for (i, j, d) in dist.iter_pairs() {
        if d != INF && d <= l {
            if let Some(t) = types.type_of(i, j) {
                counts[t as usize] += 1;
            }
        }
    }
    counts
}

/// Like [`count_within_l`] over a [`DistStore`]: every *finite* stored
/// entry is within L by construction (both backends hold the L-truncated
/// distances), so the count enumerates live pairs only — O(Σ |ball|) on
/// the sparse backend instead of a full triangle scan.
pub fn count_within_l_store(store: &DistStore, types: &TypeSystem) -> Vec<u64> {
    let mut counts = vec![0u64; types.num_types()];
    store.for_each_finite_pair(|i, j, _d| {
        if let Some(t) = types.type_of(i, j) {
            counts[t as usize] += 1;
        }
    });
    counts
}

/// Algorithm 1 (`maxLO`), with the full per-type breakdown of Figure 5c.
/// Uses the default truncated-BFS engine.
pub fn opacity_report(graph: &Graph, spec: &TypeSpec, l: u8) -> OpacityReport {
    opacity_report_with_engine(graph, spec, l, ApspEngine::default())
}

/// Algorithm 1 with an explicit distance engine (Algorithms 2/3 or BFS).
pub fn opacity_report_with_engine(
    graph: &Graph,
    spec: &TypeSpec,
    l: u8,
    engine: ApspEngine,
) -> OpacityReport {
    let types = TypeSystem::build(graph, spec);
    let dist = engine.compute(graph, l);
    let counts = count_within_l(&dist, &types, l);
    report_from_counts(&types, &counts)
}

/// Assembles a report from precomputed per-type counts.
pub fn report_from_counts(types: &TypeSystem, counts: &[u64]) -> OpacityReport {
    let denoms = types.denominators();
    let per_type = counts
        .iter()
        .zip(denoms)
        .enumerate()
        .filter(|&(_, (_, &total))| total > 0)
        .map(|(t, (&within_l, &total))| TypeOpacity {
            type_id: t as u32,
            label: types.label(t as u32).to_string(),
            within_l,
            total,
            lo: within_l as f64 / total as f64,
        })
        .collect();
    OpacityReport { per_type, max_lo: LoAssessment::from_counts(counts, denoms) }
}

/// Convenience: just the maximum opacity value of a graph.
pub fn max_lo(graph: &Graph, spec: &TypeSpec, l: u8) -> f64 {
    opacity_report(graph, spec, l).max_lo.as_f64()
}

/// Algorithm 1 under the paper's publication model: types are built from
/// the **original** graph (whose degrees are published alongside the
/// anonymized form), while distances are measured on the **published**
/// graph. This is the report that certifies an anonymization: the
/// `maxLO <= θ` guarantee of Algorithms 4/5 is with respect to original
/// degrees, which may differ from the published graph's current degrees.
///
/// # Panics
/// Panics when the two graphs have different vertex counts.
pub fn opacity_report_against_original(
    original: &Graph,
    published: &Graph,
    spec: &TypeSpec,
    l: u8,
) -> OpacityReport {
    assert_eq!(
        original.num_vertices(),
        published.num_vertices(),
        "anonymization never changes the vertex set"
    );
    let types = TypeSystem::build(original, spec);
    let dist = ApspEngine::default().compute(published, l);
    let counts = count_within_l(&dist, &types, l);
    report_from_counts(&types, &counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    fn row<'r>(report: &'r OpacityReport, label: &str) -> &'r TypeOpacity {
        report
            .per_type
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("no row labelled {label}"))
    }

    #[test]
    fn reproduces_figure_5_matrices_at_l_1() {
        // Figure 5a (counts within L) and 5c (opacity matrix) for L = 1.
        let report = opacity_report(&paper_graph(), &TypeSpec::DegreePairs, 1);
        assert_eq!(row(&report, "P{1,3}").within_l, 1);
        assert_eq!(row(&report, "P{2,4}").within_l, 4);
        assert_eq!(row(&report, "P{3,4}").within_l, 2);
        assert_eq!(row(&report, "P{4,4}").within_l, 3);
        assert_eq!(row(&report, "P{1,2}").within_l, 0);
        assert_eq!(row(&report, "P{2,2}").within_l, 0);
        // Opacity values of Figure 5c.
        assert!((row(&report, "P{1,3}").lo - 1.0).abs() < 1e-12);
        assert!((row(&report, "P{2,4}").lo - 2.0 / 3.0).abs() < 1e-12);
        assert!((row(&report, "P{3,4}").lo - 2.0 / 3.0).abs() < 1e-12);
        assert!((row(&report, "P{4,4}").lo - 1.0).abs() < 1e-12);
        // The running example's maxLO is 1 (Section 5.1.1).
        assert_eq!(report.max_lo.as_f64(), 1.0);
        assert_eq!(report.max_lo.n_at_max(), 2); // P{1,3} and P{4,4}
    }

    #[test]
    fn argmax_returns_the_saturated_types() {
        let report = opacity_report(&paper_graph(), &TypeSpec::DegreePairs, 1);
        let labels: Vec<&str> = report.argmax().iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["P{1,3}", "P{4,4}"]);
    }

    #[test]
    fn example_from_section_5_1_1_p34_at_l_1() {
        // "the L-opacity of P{3,4} in G is 2/3" — three pairs, two within 1.
        let report = opacity_report(&paper_graph(), &TypeSpec::DegreePairs, 1);
        let r = row(&report, "P{3,4}");
        assert_eq!((r.within_l, r.total), (2, 3));
    }

    #[test]
    fn larger_l_saturates_connected_graph() {
        // Figure 1's graph has diameter 3: at L = 3 every pair is within L.
        let report = opacity_report(&paper_graph(), &TypeSpec::DegreePairs, 3);
        for r in &report.per_type {
            assert_eq!(r.within_l, r.total, "type {}", r.label);
        }
        assert_eq!(report.max_lo.as_f64(), 1.0);
    }

    #[test]
    fn empty_graph_is_fully_opaque() {
        let g = Graph::new(5);
        let report = opacity_report(&g, &TypeSpec::DegreePairs, 2);
        assert_eq!(report.max_lo.as_f64(), 0.0);
        assert!(report.max_lo.satisfies(0.0));
    }

    #[test]
    fn all_engines_agree_on_opacity() {
        let g = paper_graph();
        for l in 1..=3u8 {
            let reference = opacity_report_with_engine(
                &g,
                &TypeSpec::DegreePairs,
                l,
                ApspEngine::FloydWarshall,
            );
            for engine in ApspEngine::ALL {
                let got = opacity_report_with_engine(&g, &TypeSpec::DegreePairs, l, engine);
                assert_eq!(got.max_lo.ratio(), reference.max_lo.ratio());
                assert_eq!(got.per_type.len(), reference.per_type.len());
            }
        }
    }

    #[test]
    fn explicit_types_ignore_unlisted_pairs() {
        let g = paper_graph();
        let spec = TypeSpec::Explicit(vec![vec![(0, 1), (0, 3)]]);
        let report = opacity_report(&g, &spec, 1);
        // (0,1) is an edge; (0,3) is at distance 2.
        assert_eq!(report.per_type.len(), 1);
        assert_eq!(report.per_type[0].within_l, 1);
        assert_eq!(report.per_type[0].total, 2);
        assert_eq!(report.max_lo.ratio(), (1, 2));
    }

    #[test]
    fn max_lo_convenience_matches_report() {
        let g = paper_graph();
        assert_eq!(max_lo(&g, &TypeSpec::DegreePairs, 1), 1.0);
    }
}
