//! Algorithm 5: greedy **Edge Removal/Insertion** — deprecated
//! free-function entry point.
//!
//! Each iteration performs one removal phase followed by one insertion
//! phase — the insertion counter-balances the removal, keeping the edge
//! count of the published graph equal to the original's (with `la = 1`).
//! To prevent oscillation, an edge that has been inserted is never removed
//! again, and a removed edge is never re-inserted (the paper's `E_D`/`E_A`
//! bookkeeping); both sets grow monotonically, which also bounds the loop.
//!
//! With look-ahead `la > 1`, each phase independently explores multi-edge
//! combinations (the paper only states the extension is "analogous" to
//! Algorithm 4's; under multi-edge moves the phases may transiently differ
//! in size, so exact edge-count preservation is guaranteed for `la = 1`).
//!
//! The algorithm itself lives in [`crate::strategy::RemovalInsertion`]
//! (the two phases as a [`crate::strategy::GreedyPolicy`], with the
//! `E_D`/`E_A` sets hoisted into strategy state) driven by the single
//! greedy loop of [`crate::strategy::drive_greedy`]; both phases route
//! their candidate scans through the same sharded move-selection path as
//! Algorithm 4 (see the scan-shard/merge notes in [`crate::removal`]),
//! with the same bit-for-bit sequential-equivalence guarantee under
//! [`crate::config::AnonymizeConfig::parallelism`].

use crate::config::AnonymizeConfig;
use crate::result::AnonymizationOutcome;
use crate::types::TypeSpec;
use lopacity_graph::Graph;

/// **Algorithm 5**: anonymize `graph` by alternating edge removal and edge
/// insertion until `maxLO <= θ` (or candidates/steps run out).
///
/// Thin compatibility wrapper over the session API; the output is
/// bit-for-bit identical (asserted in `tests/tests/session_api.rs`).
#[deprecated(
    since = "0.2.0",
    note = "use `Anonymizer::new(graph, spec).config(*config).run(RemovalInsertion::default())` — \
            identical output, reusable APSP build"
)]
pub fn edge_removal_insertion(
    graph: &Graph,
    spec: &TypeSpec,
    config: &AnonymizeConfig,
) -> AnonymizationOutcome {
    crate::session::Anonymizer::new(graph, spec)
        .config(*config)
        .run_once(crate::strategy::RemovalInsertion::default())
}

#[cfg(test)]
#[allow(deprecated)] // pins the wrapper's behavior, not the session's
mod tests {
    use super::*;
    use crate::opacity::opacity_report_against_original;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn infeasible_theta_terminates_without_achieving() {
        // On the Figure 1 graph at L = 1, keeping |E| = 10 while meeting
        // θ = 0.5 is *infeasible*: summing each degree-type's maximum
        // within-L capacity (⌊θ |T|⌋ over all types) allows at most 8 edges.
        // Algorithm 5 must therefore stop by candidate exhaustion — the
        // behaviour the paper reports for Rem-Ins on hard instances.
        let original = paper_graph();
        let config = AnonymizeConfig::new(1, 0.5).with_seed(1);
        let out = edge_removal_insertion(&original, &TypeSpec::DegreePairs, &config);
        assert!(!out.achieved, "θ=0.5 with constant |E| should be infeasible: {out}");
        assert!(out.steps > 0);
    }

    #[test]
    fn achieves_feasible_theta_on_larger_graph() {
        // A roomier instance where insertion capacity suffices.
        let mut original = Graph::new(12);
        for i in 0..12u32 {
            original.add_edge(i, (i + 1) % 12);
            if i % 3 == 0 {
                original.add_edge(i, (i + 5) % 12);
            }
        }
        let config = AnonymizeConfig::new(1, 0.6).with_seed(2);
        let out = edge_removal_insertion(&original, &TypeSpec::DegreePairs, &config);
        assert!(out.achieved, "{out}");
        let report =
            opacity_report_against_original(&original, &out.graph, &TypeSpec::DegreePairs, 1);
        assert!(report.max_lo.satisfies(0.6), "final LO {}", report.max_lo);
    }

    #[test]
    fn preserves_edge_count_with_la_1() {
        let original = paper_graph();
        let config = AnonymizeConfig::new(1, 0.5).with_seed(3);
        let out = edge_removal_insertion(&original, &TypeSpec::DegreePairs, &config);
        if out.achieved && out.removed.len() == out.inserted.len() {
            assert_eq!(out.graph.num_edges(), original.num_edges());
        }
        // Every iteration pairs one removal with (at most) one insertion.
        assert!(out.inserted.len() <= out.removed.len());
        assert!(out.removed.len() <= out.steps);
    }

    #[test]
    fn never_reinserts_removed_or_removes_inserted() {
        let original = paper_graph();
        let config = AnonymizeConfig::new(1, 0.3).with_seed(5);
        let out = edge_removal_insertion(&original, &TypeSpec::DegreePairs, &config);
        let removed: std::collections::HashSet<_> = out.removed.iter().collect();
        let inserted: std::collections::HashSet<_> = out.inserted.iter().collect();
        assert!(removed.is_disjoint(&inserted), "an edge crossed sides");
        // Edit lists have no duplicates.
        assert_eq!(removed.len(), out.removed.len());
        assert_eq!(inserted.len(), out.inserted.len());
    }

    #[test]
    fn final_graph_matches_edit_lists() {
        let original = paper_graph();
        let config = AnonymizeConfig::new(2, 0.6).with_seed(9);
        let out = edge_removal_insertion(&original, &TypeSpec::DegreePairs, &config);
        let mut replay = original.clone();
        for e in &out.removed {
            assert!(replay.remove_edge(e.u(), e.v()), "removed edge {e} not present");
        }
        for e in &out.inserted {
            assert!(replay.add_edge(e.u(), e.v()), "inserted edge {e} already present");
        }
        assert_eq!(replay, out.graph);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = AnonymizeConfig::new(1, 0.4).with_seed(11);
        let a = edge_removal_insertion(&paper_graph(), &TypeSpec::DegreePairs, &config);
        let b = edge_removal_insertion(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert_eq!(a.removed, b.removed);
        assert_eq!(a.inserted, b.inserted);
    }

    #[test]
    fn theta_one_is_a_no_op() {
        let out = edge_removal_insertion(
            &paper_graph(),
            &TypeSpec::DegreePairs,
            &AnonymizeConfig::new(1, 1.0),
        );
        assert!(out.achieved);
        assert_eq!(out.edits(), 0);
    }

    #[test]
    fn max_steps_bounds_iterations() {
        let config = AnonymizeConfig::new(1, 0.0).with_max_steps(3);
        let out = edge_removal_insertion(&paper_graph(), &TypeSpec::DegreePairs, &config);
        assert!(out.steps <= 3);
    }
}
