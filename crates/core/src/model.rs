//! The [`PrivacyModel`] trait: competing anonymity notions behind one
//! session.
//!
//! L-opacity exists because distance-based linkage defeats simpler
//! anonymity notions — a claim that is only testable when the rival
//! notions are runnable side by side. A [`PrivacyModel`] packages one such
//! notion as three capabilities:
//!
//! 1. **certify** — decide whether a graph satisfies the model;
//! 2. **violations** — count the unmet constraints (0 ⇔ certified), so
//!    partially-repaired graphs are comparable;
//! 3. **repair** — hand back a [`Strategy`] that drives a graph toward
//!    the model through the ordinary [`crate::Anonymizer`] session, so
//!    the greedy driver, [`crate::ProgressObserver`] streaming,
//!    [`crate::RunControl`] cancellation, and the persistent-fork
//!    machinery are reused unchanged.
//!
//! Plus a scalar **leakage** score used by the cross-model comparison
//! harness ("does the k-degree-anonymous output still leak under
//! L-opacity at θ?"): for L-opacity it is `maxLO`; counting models report
//! the violating fraction of their constraint space.
//!
//! The crate ships the [`LOpacity`] model (the paper's own notion);
//! degree-sequence k-anonymity and (k,ℓ)-adjacency anonymity live in
//! `crates/models`, which implements this trait for each.

use crate::opacity::{opacity_report, opacity_report_against_original, OpacityReport};
use crate::strategy::{Removal, RemovalInsertion, Strategy};
use crate::types::TypeSpec;
use lopacity_graph::Graph;

/// Float slack for per-type opacity comparisons; matches the tolerance the
/// doc examples use when checking `maxLO <= θ` on `f64` values.
const EPS: f64 = 1e-12;

/// One anonymity notion: certifier, violation counter, and repair policy.
///
/// Object-safe — the comparison harness holds `Box<dyn PrivacyModel>`
/// values and scores every model's output with every *other* model's
/// certifier.
pub trait PrivacyModel {
    /// Short stable identifier (CSV columns, JSON keys, CLI labels).
    fn name(&self) -> &'static str;

    /// Human-readable label including the model's parameters,
    /// e.g. `l-opacity-rem(L=2, theta=0.50)`.
    fn label(&self) -> String;

    /// Number of unmet constraints in `graph`; 0 means certified. The
    /// constraint granularity is model-specific (L-opacity: over-θ types;
    /// k-degree: vertices in undersized degree classes) — comparable
    /// within a model across graphs, not across models.
    fn violations(&self, graph: &Graph) -> u64;

    /// Whether `graph` satisfies the model.
    fn certify(&self, graph: &Graph) -> bool {
        self.violations(graph) == 0
    }

    /// Scalar leakage in `[0, 1]`: how exposed `graph` is under this
    /// model's adversary (0 = fully protected). Unlike
    /// [`PrivacyModel::violations`], this is designed for *cross*-model
    /// comparison columns.
    fn leakage(&self, graph: &Graph) -> f64;

    /// A fresh repair policy for this model, runnable by
    /// [`crate::Anonymizer::run`] like any other [`Strategy`]. Repairs
    /// declare their own verdict via `RunContext::declare_achieved`, so
    /// the outcome's `achieved` field reflects *this* model's certifier.
    fn repair_strategy(&self) -> Box<dyn Strategy>;
}

/// The paper's own notion as a [`PrivacyModel`]: a graph passes when
/// `maxLO <= θ` at the configured L.
///
/// Certification follows the publication model when an original graph is
/// attached ([`LOpacity::against_original`]): vertex-pair types are built
/// from the *original* degrees (published alongside the anonymized graph),
/// distances are measured on the graph under test. Without an original the
/// graph under test supplies both — the right reading for certifying an
/// unedited input.
#[derive(Debug, Clone)]
pub struct LOpacity {
    spec: TypeSpec,
    l: u8,
    theta: f64,
    insertion: bool,
    original: Option<Graph>,
}

impl LOpacity {
    /// L-opacity repaired by greedy edge removal (Algorithm 4).
    pub fn removal(spec: TypeSpec, l: u8, theta: f64) -> Self {
        assert!(l >= 1, "L must be at least 1");
        assert!((0.0..=1.0).contains(&theta), "theta = {theta} out of [0, 1]");
        LOpacity { spec, l, theta, insertion: false, original: None }
    }

    /// L-opacity repaired by greedy removal/insertion (Algorithm 5).
    pub fn removal_insertion(spec: TypeSpec, l: u8, theta: f64) -> Self {
        LOpacity { insertion: true, ..Self::removal(spec, l, theta) }
    }

    /// Certify against `original`'s published degrees (the paper's
    /// publication model) instead of the graph under test's own.
    pub fn against_original(mut self, original: &Graph) -> Self {
        self.original = Some(original.clone());
        self
    }

    /// The configured path-length threshold L.
    pub fn l(&self) -> u8 {
        self.l
    }

    /// The configured confidence threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn report(&self, graph: &Graph) -> OpacityReport {
        match &self.original {
            Some(original) => {
                opacity_report_against_original(original, graph, &self.spec, self.l)
            }
            None => opacity_report(graph, &self.spec, self.l),
        }
    }
}

impl PrivacyModel for LOpacity {
    fn name(&self) -> &'static str {
        if self.insertion {
            "l-opacity-rem-ins"
        } else {
            "l-opacity-rem"
        }
    }

    fn label(&self) -> String {
        format!("{}(L={}, theta={:.2})", self.name(), self.l, self.theta)
    }

    fn violations(&self, graph: &Graph) -> u64 {
        self.report(graph)
            .per_type
            .iter()
            .filter(|row| row.lo > self.theta + EPS)
            .count() as u64
    }

    fn leakage(&self, graph: &Graph) -> f64 {
        self.report(graph).max_lo.as_f64()
    }

    fn repair_strategy(&self) -> Box<dyn Strategy> {
        if self.insertion {
            Box::new(RemovalInsertion::default())
        } else {
            Box::new(Removal)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnonymizeConfig;
    use crate::session::Anonymizer;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn l_opacity_model_certifies_like_the_report() {
        let g = paper_graph();
        let model = LOpacity::removal(TypeSpec::DegreePairs, 1, 0.5);
        // Figure 5c: maxLO = 1 at L = 1, with P{1,3} and P{4,4} saturated
        // and P{2,4}, P{3,4} at 2/3 — four types above θ = 0.5.
        assert!(!model.certify(&g));
        assert_eq!(model.violations(&g), 4);
        assert_eq!(model.leakage(&g), 1.0);
        // θ = 1 accepts anything.
        let lax = LOpacity::removal(TypeSpec::DegreePairs, 1, 1.0);
        assert!(lax.certify(&g));
        assert_eq!(lax.violations(&g), 0);
    }

    #[test]
    fn repair_strategy_runs_through_the_session_and_certifies() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let model = LOpacity::removal(spec.clone(), 1, 0.5).against_original(&g);
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5).with_seed(1));
        let outcome = session.run(model.repair_strategy());
        assert!(outcome.achieved);
        assert!(model.certify(&outcome.graph), "publication-model certification");
        assert!(model.leakage(&outcome.graph) <= 0.5 + EPS);
    }

    #[test]
    fn boxed_strategies_match_unboxed_runs() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5).with_seed(2));
        let unboxed = session.run(Removal);
        let boxed: Box<dyn Strategy> = Box::new(Removal);
        let via_box = session.run(boxed);
        assert_eq!(unboxed.removed, via_box.removed);
        assert_eq!(unboxed.graph, via_box.graph);
    }

    #[test]
    fn labels_carry_the_parameters() {
        let model = LOpacity::removal_insertion(TypeSpec::DegreePairs, 2, 0.5);
        assert_eq!(model.name(), "l-opacity-rem-ins");
        assert_eq!(model.label(), "l-opacity-rem-ins(L=2, theta=0.50)");
    }
}
