//! Live-graph churn and incremental re-certification.
//!
//! The paper treats L-opacity as a one-shot transform: anonymize, publish,
//! done. A maintained deployment faces a different problem — the graph keeps
//! changing *after* certification (friendships form, accounts close), and
//! every change can silently break the published (θ, L) guarantee. The
//! from-scratch answer — rebuild the full truncated APSP and re-run the
//! greedy loop per change — pays `O(|V| (|V| + |E|))` for what is usually a
//! two-ball perturbation.
//!
//! A [`ChurnSession`] keeps a certified graph certified incrementally:
//!
//! 1. **Events.** External [`EdgeEvent`]s (inserts and deletes that the
//!    world imposes, as opposed to edits the greedy loop chooses) are
//!    applied through [`OpacityEvaluator::apply_external`] — one ball-local
//!    delta each, no APSP rebuild — and replayed onto the session's
//!    persistent scan forks, exactly like a committed greedy move.
//! 2. **Detection.** After each batch the session re-reads `(maxLO, N)`
//!    from the incrementally maintained per-type counts (O(#types)) and
//!    flags a violation when `maxLO > θ`.
//! 3. **Repair.** On violation, [`ChurnSession::repair`] re-runs any
//!    [`Strategy`] *from the current state* — the evaluator build, warm
//!    forks included, is reused — and emits a [`RepairPatch`]: the edit
//!    list the publisher must apply, plus the post-repair assessment.
//!
//! # Replay determinism
//!
//! A patch is a pure function of (initial graph, type spec, config, event
//! stream): every repair seeds a fresh `StdRng` from `config.seed` and
//! starts from counters that depend only on the events applied so far, so
//! replaying the same stream twice — or on another machine, store backend,
//! or worker count — yields byte-identical patches. The oracle half of the
//! contract is [`OpacityEvaluator::with_type_system`]: after any event
//! prefix, the incremental state must equal a fresh build over the mutated
//! graph under the session's *frozen* types (property-tested in
//! `tests/tests/churn_equivalence.rs`).
//!
//! ```
//! use lopacity::{Anonymizer, AnonymizeConfig, ChurnSession, EdgeEvent, Removal, TypeSpec};
//! use lopacity_graph::{Edge, Graph};
//!
//! let g = Graph::from_edges(7, [
//!     (0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6),
//! ]).unwrap();
//! let spec = TypeSpec::DegreePairs;
//! let anonymizer = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(2, 0.9));
//! let mut session = ChurnSession::new(anonymizer);
//!
//! let report = session.apply_batch(&[EdgeEvent::Insert(Edge::new(0, 6))]);
//! if report.violated {
//!     let patch = session.repair(Removal);
//!     assert!(patch.achieved);
//! }
//! ```

use crate::config::AnonymizeConfig;
use crate::control::RunControl;
use crate::evaluator::{BatchDelta, CommitDelta, OpacityEvaluator};
use crate::forks::ForkSet;
use crate::lo::LoAssessment;
use crate::progress::NoOpObserver;
use crate::session::{run_segment, Anonymizer, RunTotals};
use crate::strategy::Strategy;
use lopacity_graph::Edge;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One external edge change, imposed by the world rather than chosen by a
/// strategy. Events are *requests*: applying one that is already true of
/// the graph (inserting a present edge, deleting an absent one) is counted
/// as skipped, not an error — real streams carry duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeEvent {
    /// The edge appeared.
    Insert(Edge),
    /// The edge disappeared.
    Delete(Edge),
}

impl EdgeEvent {
    /// The edge this event concerns.
    pub fn edge(&self) -> Edge {
        match *self {
            EdgeEvent::Insert(e) | EdgeEvent::Delete(e) => e,
        }
    }

    /// Whether this event adds the edge.
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeEvent::Insert(_))
    }

    /// Parses one line of the event protocol: `+ u v` (insert) or
    /// `- u v` (delete), whitespace-separated. Blank lines and lines
    /// starting with `#` or `%` are comments (`Ok(None)`). Self-loops and
    /// malformed lines are errors — they indicate a corrupt stream, not
    /// benign noise (out-of-range vertices, by contrast, are only
    /// detectable against a specific graph and are skipped at apply time).
    pub fn parse_line(line: &str) -> Result<Option<EdgeEvent>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty after trim");
        let insert = match op {
            "+" => true,
            "-" => false,
            other => return Err(format!("unknown event op {other:?} (expected + or -)")),
        };
        let mut vertex = || -> Result<u32, String> {
            parts
                .next()
                .ok_or_else(|| format!("event line {line:?} is missing a vertex"))?
                .parse::<u32>()
                .map_err(|e| format!("bad vertex in event line {line:?}: {e}"))
        };
        let (u, v) = (vertex()?, vertex()?);
        if parts.next().is_some() {
            return Err(format!("trailing tokens in event line {line:?}"));
        }
        if u == v {
            return Err(format!("self-loop event ({u}, {v}) is not a simple-graph change"));
        }
        let e = Edge::new(u, v);
        Ok(Some(if insert { EdgeEvent::Insert(e) } else { EdgeEvent::Delete(e) }))
    }

    /// Parses a whole event stream, one event per line, reporting the
    /// first malformed line by number.
    pub fn parse_stream(text: &str) -> Result<Vec<EdgeEvent>, String> {
        let mut events = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            match EdgeEvent::parse_line(line) {
                Ok(Some(ev)) => events.push(ev),
                Ok(None) => {}
                Err(e) => return Err(format!("line {}: {e}", idx + 1)),
            }
        }
        Ok(events)
    }
}

impl std::fmt::Display for EdgeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (op, e) = match self {
            EdgeEvent::Insert(e) => ('+', e),
            EdgeEvent::Delete(e) => ('-', e),
        };
        write!(f, "{op} {} {}", e.u(), e.v())
    }
}

/// What one [`ChurnSession::apply_batch`] did to the session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Events that changed the graph.
    pub applied: usize,
    /// No-op events (duplicate inserts, deletes of absent edges,
    /// out-of-range vertices).
    pub skipped: usize,
    /// Distance cells rewritten across the batch — the actual incremental
    /// work, which the detect-latency bench reports per event.
    pub changed_cells: usize,
    /// `maxLO` after the batch.
    pub max_lo: f64,
    /// Number of types attaining `maxLO` after the batch.
    pub n_at_max: usize,
    /// Whether the batch broke certification (`maxLO > θ`).
    pub violated: bool,
}

/// A certified repair: the edits a publisher must apply to restore
/// (θ, L)-opacity after churn, plus the post-repair assessment.
///
/// Patches compare by value — replaying the same event stream must produce
/// byte-identical patches, which the equivalence suite asserts with
/// `assert_eq!` on whole patches.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairPatch {
    /// Edges the repair removed, in commit order.
    pub removed: Vec<Edge>,
    /// Edges the repair inserted, in commit order.
    pub inserted: Vec<Edge>,
    /// Greedy steps the repair took.
    pub steps: usize,
    /// Candidate evaluations the repair spent.
    pub trials: u64,
    /// `maxLO` after the repair.
    pub max_lo: f64,
    /// Number of types attaining `maxLO` after the repair.
    pub n_at_max: usize,
    /// Whether the repair restored `maxLO ≤ θ`.
    pub achieved: bool,
}

impl RepairPatch {
    /// Total edit count of the patch.
    pub fn edits(&self) -> usize {
        self.removed.len() + self.inserted.len()
    }
}

/// A live anonymization session: a certified graph absorbing an external
/// edge-event stream, re-certifying incrementally. See the [module
/// docs](self) for the protocol.
pub struct ChurnSession {
    ev: OpacityEvaluator,
    forks: ForkSet,
    config: AnonymizeConfig,
    control: Option<RunControl>,
    /// Reused coalescing buffer for [`apply_batch`](Self::apply_batch).
    batch: BatchDelta,
    applied: u64,
    skipped: u64,
    repairs: u64,
}

impl ChurnSession {
    /// Adopts a prepared [`Anonymizer`]'s evaluator build (types frozen
    /// from the graph the anonymizer was opened on) and configuration as
    /// the session's long-lived working state. The anonymizer is consumed:
    /// a churn session *mutates* its evaluator permanently, which is
    /// incompatible with the anonymizer's pristine-cache contract.
    pub fn new(mut anonymizer: Anonymizer<'_>) -> Self {
        let config = *anonymizer.current_config();
        let ev = anonymizer.take_prepared();
        ChurnSession {
            ev,
            forks: ForkSet::new(),
            config,
            control: None,
            batch: BatchDelta::new(),
            applied: 0,
            skipped: 0,
            repairs: 0,
        }
    }

    /// Attaches (or detaches) a shared [`RunControl`] polled by future
    /// [`repair`](Self::repair) runs, for mid-repair cancellation and
    /// dynamic budgets. Event application itself is not interruptible —
    /// individual deltas are cheap and must land atomically.
    pub fn set_control(&mut self, control: Option<RunControl>) {
        self.control = control;
    }

    /// Read access to the working evaluator (graph, distances, counts).
    pub fn evaluator(&self) -> &OpacityEvaluator {
        &self.ev
    }

    /// The session configuration (θ, L, seed, parallelism, ...).
    pub fn config(&self) -> &AnonymizeConfig {
        &self.config
    }

    /// `(maxLO, N)` of the current working graph.
    pub fn assessment(&self) -> LoAssessment {
        self.ev.assessment()
    }

    /// Whether the current graph satisfies the session's θ.
    pub fn is_certified(&self) -> bool {
        self.ev.assessment().satisfies(self.config.theta)
    }

    /// Events that changed the graph so far.
    pub fn events_applied(&self) -> u64 {
        self.applied
    }

    /// No-op events seen so far.
    pub fn events_skipped(&self) -> u64 {
        self.skipped
    }

    /// Repairs run so far.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Full `O(|V|²)`-scale evaluator clones paid so far (fork warmup).
    pub fn fork_clones(&self) -> u64 {
        self.forks.clones()
    }

    /// Fork-sync replay applications so far — after batch coalescing, one
    /// per fork per *batch* (or per single out-of-batch event), however
    /// many events the batch contained.
    pub fn fork_replays(&self) -> u64 {
        self.forks.replays()
    }

    /// Applies one event as an incremental delta. Returns the number of
    /// distance cells it changed, or `None` for a no-op event. Warm scan
    /// forks are kept in sync by replaying the event's [`crate::CommitDelta`],
    /// exactly as for a committed greedy move — so a later repair needs no
    /// re-clone.
    pub fn apply_event(&mut self, event: EdgeEvent) -> Option<usize> {
        match self.mutate(event) {
            Some(delta) => {
                if self.forks.warm() {
                    self.forks.replay(&delta);
                }
                Some(delta.changed_cells())
            }
            None => None,
        }
    }

    /// Applies one event to the main evaluator and the session counters —
    /// everything except fork sync, which the caller owes (per event for
    /// [`apply_event`](Self::apply_event), once per batch for
    /// [`apply_batch`](Self::apply_batch)).
    fn mutate(&mut self, event: EdgeEvent) -> Option<CommitDelta> {
        let delta = self.ev.apply_external(event.edge(), event.is_insert());
        match delta {
            Some(_) => self.applied += 1,
            None => self.skipped += 1,
        }
        delta
    }

    /// Applies a batch of events and re-reads certification — the
    /// detect step of the churn loop.
    ///
    /// The main evaluator absorbs events one delta at a time (each event's
    /// delta is computed against the state its predecessors produced), but
    /// warm scan forks are synced by **one** coalesced [`BatchDelta`]
    /// application per batch — one write per distinct distance cell, not
    /// one per event — which for localized churn is the dominant fork-sync
    /// saving. The end-of-batch state is identical either way (the report,
    /// assessment, and any later repair are byte-for-byte unchanged).
    pub fn apply_batch(&mut self, events: &[EdgeEvent]) -> BatchReport {
        let mut report = BatchReport {
            applied: 0,
            skipped: 0,
            changed_cells: 0,
            max_lo: 0.0,
            n_at_max: 0,
            violated: false,
        };
        self.batch.clear();
        for &event in events {
            match self.mutate(event) {
                Some(delta) => {
                    report.applied += 1;
                    report.changed_cells += delta.changed_cells();
                    if self.forks.warm() {
                        self.batch.absorb(&delta);
                    }
                }
                None => report.skipped += 1,
            }
        }
        self.forks.replay_batch(&self.batch);
        self.batch.clear();
        let a = self.ev.assessment();
        report.max_lo = a.as_f64();
        report.n_at_max = a.n_at_max();
        report.violated = !a.satisfies(self.config.theta);
        report
    }

    /// Re-runs `strategy` from the session's *current* state (no rebuild,
    /// warm forks reused) and returns the certified [`RepairPatch`].
    ///
    /// Each repair starts from a fresh `config.seed`-seeded RNG and fresh
    /// edit bookkeeping, so the patch depends only on the graph state the
    /// event stream produced — the replay-determinism half of the churn
    /// contract. Calling this while already certified is legal and returns
    /// an empty achieved patch (the greedy driver stops immediately).
    pub fn repair<S: Strategy>(&mut self, mut strategy: S) -> RepairPatch {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut totals = RunTotals::default();
        let mut observer = NoOpObserver;
        run_segment(
            &mut self.ev,
            &mut self.forks,
            &mut rng,
            &mut totals,
            &self.config,
            &mut observer,
            self.control.as_ref(),
            &mut strategy,
        );
        self.repairs += 1;
        let a = self.ev.assessment();
        RepairPatch {
            removed: totals.removed,
            inserted: totals.inserted,
            steps: totals.steps,
            trials: totals.trials,
            max_lo: a.as_f64(),
            n_at_max: a.n_at_max(),
            achieved: a.satisfies(self.config.theta),
        }
    }

    /// Certifies the incremental state against a full recomputation —
    /// distances, per-type counts, and the live-pair counter must all
    /// match. Expensive (`O(|V| (|V| + |E|))`); the oracle-equivalence
    /// suite runs it after whole streams, a deployment would sample it.
    pub fn certify(&self) -> Result<(), String> {
        self.ev.verify_consistency()
    }

    /// Consumes the session, returning the working graph (for publication
    /// or a final from-scratch audit).
    pub fn into_graph(self) -> lopacity_graph::Graph {
        self.ev.into_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Removal;
    use crate::types::TypeSpec;
    use lopacity_apsp::StoreBackend;
    use lopacity_util::Parallelism;
    use lopacity_graph::Graph;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    const BACKENDS: [StoreBackend; 2] = [StoreBackend::Dense, StoreBackend::Sparse];

    fn session_on(l: u8, theta: f64, backend: StoreBackend) -> ChurnSession {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let anonymizer = Anonymizer::new(&g, &spec)
            .config(AnonymizeConfig::new(l, theta).with_store(backend));
        ChurnSession::new(anonymizer)
    }

    #[test]
    fn parse_line_round_trips_the_protocol() {
        assert_eq!(
            EdgeEvent::parse_line("+ 3 7").unwrap(),
            Some(EdgeEvent::Insert(Edge::new(3, 7)))
        );
        assert_eq!(
            EdgeEvent::parse_line("  - 9 2 ").unwrap(),
            Some(EdgeEvent::Delete(Edge::new(2, 9)))
        );
        assert_eq!(EdgeEvent::parse_line("").unwrap(), None);
        assert_eq!(EdgeEvent::parse_line("# comment").unwrap(), None);
        assert_eq!(EdgeEvent::parse_line("% comment").unwrap(), None);
        assert!(EdgeEvent::parse_line("* 1 2").is_err());
        assert!(EdgeEvent::parse_line("+ 1").is_err());
        assert!(EdgeEvent::parse_line("+ 1 x").is_err());
        assert!(EdgeEvent::parse_line("+ 1 2 3").is_err());
        assert!(EdgeEvent::parse_line("+ 4 4").is_err(), "self-loops are stream corruption");
        let ev = EdgeEvent::Insert(Edge::new(3, 7));
        assert_eq!(EdgeEvent::parse_line(&ev.to_string()).unwrap(), Some(ev));
    }

    #[test]
    fn parse_stream_reports_line_numbers() {
        let events = EdgeEvent::parse_stream("# header\n+ 0 6\n\n- 1 4\n").unwrap();
        assert_eq!(
            events,
            vec![EdgeEvent::Insert(Edge::new(0, 6)), EdgeEvent::Delete(Edge::new(1, 4))]
        );
        let err = EdgeEvent::parse_stream("+ 0 6\n? 1 2\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn noop_events_are_skipped_not_applied() {
        for backend in BACKENDS {
            let mut s = session_on(2, 1.0, backend);
            // Duplicate insert, delete of an absent edge, out-of-range vertex.
            assert_eq!(s.apply_event(EdgeEvent::Insert(Edge::new(0, 1))), None);
            assert_eq!(s.apply_event(EdgeEvent::Delete(Edge::new(0, 6))), None);
            assert_eq!(s.apply_event(EdgeEvent::Insert(Edge::new(0, 700))), None);
            assert_eq!(s.events_applied(), 0);
            assert_eq!(s.events_skipped(), 3);
            assert_eq!(s.evaluator().graph(), &paper_graph(), "{backend}");
            s.certify().unwrap();
        }
    }

    #[test]
    fn applied_events_match_fresh_build_oracle() {
        use lopacity_apsp::ApspEngine;
        for backend in BACKENDS {
            let mut s = session_on(2, 1.0, backend);
            let events = [
                EdgeEvent::Delete(Edge::new(1, 4)),
                EdgeEvent::Insert(Edge::new(0, 6)),
                EdgeEvent::Insert(Edge::new(1, 4)), // revive a deleted edge
                EdgeEvent::Delete(Edge::new(5, 6)),
            ];
            let report = s.apply_batch(&events);
            assert_eq!(report.applied, 4, "{backend}");
            assert_eq!(report.skipped, 0);
            assert!(report.changed_cells > 0);
            s.certify().unwrap();
            // Oracle: fresh build over the mutated graph with *frozen* types.
            let oracle = OpacityEvaluator::with_type_system(
                s.evaluator().graph().clone(),
                s.evaluator().types().clone(),
                2,
                ApspEngine::default(),
                Parallelism::Off,
                backend,
            );
            assert_eq!(s.evaluator().counts(), oracle.counts(), "{backend}");
            assert_eq!(s.evaluator().live_pairs(), oracle.live_pairs(), "{backend}");
            assert_eq!(
                s.assessment().ratio(),
                oracle.assessment().ratio(),
                "{backend}"
            );
        }
    }

    #[test]
    fn violation_is_detected_and_repaired() {
        for backend in BACKENDS {
            // θ just under the starting maxLO=1.0 at L=1 would start violated;
            // instead certify at θ = 1.0... that can never be violated. Use
            // L=1, θ chosen between post-repair and pre-churn opacity.
            let g = paper_graph();
            let spec = TypeSpec::DegreePairs;
            let anonymizer = Anonymizer::new(&g, &spec)
                .config(AnonymizeConfig::new(1, 0.5).with_store(backend).with_seed(7));
            let mut s = ChurnSession::new(anonymizer);
            // Start uncertified (maxLO = 1.0 > 0.5): first repair certifies.
            assert!(!s.is_certified());
            let initial = s.repair(Removal);
            assert!(initial.achieved, "{backend}");
            assert!(s.is_certified());
            // Re-insert the removed edges: churn undoes the anonymization.
            let events: Vec<EdgeEvent> =
                initial.removed.iter().map(|&e| EdgeEvent::Insert(e)).collect();
            let report = s.apply_batch(&events);
            assert!(report.violated, "{backend}: {report:?}");
            assert!(!s.is_certified());
            let patch = s.repair(Removal);
            assert!(patch.achieved, "{backend}");
            assert!(patch.edits() > 0);
            assert!(s.is_certified());
            assert_eq!(s.repairs(), 2);
            s.certify().unwrap();
        }
    }

    /// Regression (issue 7 satellite): a churn batch syncs the warm scan
    /// forks with **one** coalesced replay application per fork, not one
    /// per event — and the forks remain exactly in sync (a later sharded
    /// repair re-scans against them, which debug-asserts revision
    /// equality, and the final state self-certifies).
    #[test]
    fn batch_syncs_forks_with_one_replay_application() {
        for backend in BACKENDS {
            let g = paper_graph();
            let spec = TypeSpec::DegreePairs;
            let anonymizer = Anonymizer::new(&g, &spec).config(
                AnonymizeConfig::new(1, 0.5)
                    .with_store(backend)
                    .with_parallelism(Parallelism::Fixed(2))
                    .with_seed(7),
            );
            let mut s = ChurnSession::new(anonymizer);
            let initial = s.repair(Removal);
            assert!(initial.achieved, "{backend}");
            let forks = s.fork_clones();
            assert!(forks > 0, "{backend}: the sharded repair must warm the forks");
            let replays_before = s.fork_replays();
            let events: Vec<EdgeEvent> =
                initial.removed.iter().map(|&e| EdgeEvent::Insert(e)).collect();
            assert!(events.len() >= 2, "{backend}: need a multi-event batch");
            let report = s.apply_batch(&events);
            assert_eq!(report.applied, events.len(), "{backend}");
            assert_eq!(
                s.fork_replays() - replays_before,
                forks,
                "{backend}: one replay application per fork per batch"
            );
            let patch = s.repair(Removal);
            assert!(patch.achieved, "{backend}");
            s.certify().unwrap();
        }
    }

    /// The same churn trajectory on a dense and a sparse session produces
    /// identical graphs, reports, and repair patches — the backend
    /// invariance contract extended to external events.
    #[test]
    fn backends_agree_on_reports_and_patches() {
        let run = |backend: StoreBackend| {
            let g = paper_graph();
            let spec = TypeSpec::DegreePairs;
            let anonymizer = Anonymizer::new(&g, &spec)
                .config(AnonymizeConfig::new(2, 0.8).with_store(backend).with_seed(3));
            let mut s = ChurnSession::new(anonymizer);
            let report = s.apply_batch(&[
                EdgeEvent::Insert(Edge::new(0, 6)),
                EdgeEvent::Insert(Edge::new(3, 6)),
                EdgeEvent::Delete(Edge::new(2, 5)),
                EdgeEvent::Delete(Edge::new(2, 5)), // duplicate: skipped
            ]);
            let patch = s.repair(Removal);
            s.certify().unwrap();
            (report, patch, s.into_graph())
        };
        let dense = run(StoreBackend::Dense);
        let sparse = run(StoreBackend::Sparse);
        assert_eq!(dense.0, sparse.0, "batch reports diverged");
        assert_eq!(dense.1, sparse.1, "repair patches diverged");
        assert_eq!(dense.2, sparse.2, "graphs diverged");
    }

    /// Warm forks survive external events: a repair under Fixed parallelism
    /// warms the fork set, subsequent events replay onto the forks, and the
    /// next repair scans against them without re-cloning.
    #[test]
    fn forks_stay_in_sync_across_external_events() {
        for backend in BACKENDS {
            let g = paper_graph();
            let spec = TypeSpec::DegreePairs;
            let anonymizer = Anonymizer::new(&g, &spec).config(
                AnonymizeConfig::new(1, 0.5)
                    .with_store(backend)
                    .with_parallelism(Parallelism::Fixed(2))
                    .with_seed(7),
            );
            let mut s = ChurnSession::new(anonymizer);
            let initial = s.repair(Removal);
            assert!(initial.achieved);
            let events: Vec<EdgeEvent> =
                initial.removed.iter().map(|&e| EdgeEvent::Insert(e)).collect();
            assert!(s.apply_batch(&events).violated);
            // This repair's sharded scans trial against forks that saw the
            // external events only via replay; debug builds assert sync.
            let patch = s.repair(Removal);
            assert!(patch.achieved, "{backend}");
            s.certify().unwrap();
        }
    }

    /// A repair on an already-certified session is an empty patch.
    #[test]
    fn repair_when_certified_is_empty() {
        let mut s = session_on(2, 1.0, StoreBackend::Dense);
        let patch = s.repair(Removal);
        assert!(patch.achieved);
        assert_eq!(patch.edits(), 0);
        assert_eq!(patch.steps, 0);
    }

    /// External deltas captured on a dense evaluator replay exactly onto a
    /// sparse fork (and the other way around) — `CommitDelta`'s `(i, j)`
    /// cell addressing owes nothing to the source layout, external edges
    /// included.
    #[test]
    fn external_deltas_replay_across_backends() {
        use lopacity_apsp::ApspEngine;
        let build = |backend| {
            OpacityEvaluator::with_options(
                paper_graph(),
                &TypeSpec::DegreePairs,
                2,
                ApspEngine::default(),
                Parallelism::Off,
                backend,
            )
        };
        for (main_backend, fork_backend) in [
            (StoreBackend::Dense, StoreBackend::Sparse),
            (StoreBackend::Sparse, StoreBackend::Dense),
        ] {
            let mut main = build(main_backend);
            let mut fork = build(fork_backend);
            for (edge, insert) in [
                (Edge::new(0, 6), true),  // external insert: ball growth
                (Edge::new(1, 4), false), // external delete
                (Edge::new(1, 4), true),  // revive (sparse: tombstone rebirth)
                (Edge::new(3, 6), true),
            ] {
                let delta = main
                    .apply_external(edge, insert)
                    .expect("all four events change the graph");
                fork.replay_commit(&delta);
                fork.verify_consistency().unwrap();
                assert_eq!(fork.graph(), main.graph(), "{main_backend}->{fork_backend}");
                assert_eq!(fork.counts(), main.counts(), "{main_backend}->{fork_backend}");
            }
        }
    }
}
