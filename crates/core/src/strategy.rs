//! Pluggable anonymization strategies.
//!
//! Feder, Nabar & Terzi ("Anonymizing Graphs") and Mauw et al.
//! ("(k,ℓ)-adjacency anonymity") both frame graph anonymization as a family
//! of interchangeable edge-edit transformations evaluated under one privacy
//! model — the shape this crate's public surface follows. A [`Strategy`]
//! is one such transformation policy; the [`crate::Anonymizer`] session
//! supplies the shared machinery (evaluator, RNG, budgets, observers,
//! counters) through a [`RunContext`], and the strategy decides which moves
//! to search and commit.
//!
//! The two greedy heuristics of the paper — Algorithm 4
//! ([`Removal`]) and Algorithm 5 ([`RemovalInsertion`]) — differ *only* in
//! their per-step phases: what candidates each phase scans, and what
//! bookkeeping a committed move updates. [`drive_greedy`] is the single
//! loop both previously duplicated, generic over a [`GreedyPolicy`];
//! custom greedy variants (different candidate filters, extra phases) plug
//! in by implementing that trait. [`ExactMinRemovals`] shows the trait is
//! not limited to greedy shapes: it runs the branch-and-bound solver of
//! [`crate::optimal`] under the same session surface.

use crate::evaluator::OpacityEvaluator;
use crate::session::RunContext;
use lopacity_graph::Edge;
use std::collections::HashSet;

/// Which elementary move a scan or commit performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Delete an existing edge.
    Remove,
    /// Add a currently absent edge.
    Insert,
}

/// An anonymization policy executable by an [`crate::Anonymizer`] session.
pub trait Strategy {
    /// Short stable identifier (observer events, CSV columns, CLI labels).
    fn name(&self) -> &'static str;

    /// Drives the working graph toward `ctx.config().theta`. Implementors
    /// select moves ([`RunContext::select`]), commit them
    /// ([`RunContext::commit`]), and mark step boundaries
    /// ([`RunContext::step_committed`]); greedy policies usually delegate
    /// the whole loop to [`drive_greedy`].
    fn execute(&mut self, ctx: &mut RunContext<'_>);
}

/// Boxed strategies are strategies: lets [`crate::model::PrivacyModel`]
/// implementations hand `Box<dyn Strategy>` repair policies straight to
/// [`crate::Anonymizer::run`] without an unboxing shim.
impl Strategy for Box<dyn Strategy + '_> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        (**self).execute(ctx)
    }
}

/// Per-phase policy of one greedy step — everything that distinguished
/// Algorithm 4 from Algorithm 5.
pub trait GreedyPolicy {
    /// Phases per greedy step (Algorithm 4: 1; Algorithm 5: 2).
    fn num_phases(&self) -> usize;

    /// The elementary move of `phase`.
    fn kind(&self, phase: usize) -> MoveKind;

    /// Collects `phase`'s candidates into `out` (cleared by the driver;
    /// the buffer is reused across steps, so per-step scans allocate
    /// nothing).
    fn candidates(&mut self, phase: usize, ev: &OpacityEvaluator, out: &mut Vec<Edge>);

    /// Records a committed combo (e.g. the paper's `E_D`/`E_A` sets).
    fn committed(&mut self, phase: usize, combo: &[Edge]);

    /// Whether an empty selection in `phase` ends the run (Algorithm 5's
    /// removal phase is required, its insertion phase is not).
    fn required(&self, _phase: usize) -> bool {
        true
    }
}

/// The one greedy loop behind Algorithms 4 and 5: while the threshold is
/// unmet, edges remain, and budgets allow, run every phase of `policy` —
/// scan its candidates, commit the best combo — then count the step.
/// A required phase with no selectable move ends the run; an optional one
/// is skipped for that step. A full pass in which *no* phase commits
/// anything also ends the run — the state cannot change again, and a
/// policy with only optional phases would otherwise spin forever.
///
/// Interruption happens at two grains with deliberately different
/// mechanics: the *static* config budgets are re-checked only at the top
/// of each step (and enforced within a step by prefix-truncating the
/// candidate scan, keeping budgeted runs bit-for-bit prefixes of
/// unbudgeted ones), while a shared [`crate::RunControl`] is additionally
/// polled **between phases**, so a cancellation or dynamic budget lands
/// within one scan phase instead of one full step. With no control
/// attached the extra polls are inert and the loop is byte-identical to
/// its historical behaviour.
pub fn drive_greedy<P: GreedyPolicy + ?Sized>(ctx: &mut RunContext<'_>, policy: &mut P) {
    let phases = policy.num_phases();
    let mut candidates: Vec<Edge> = Vec::new();
    'run: while !ctx.achieved() && ctx.evaluator().graph().num_edges() > 0 {
        if ctx.interrupted() {
            break;
        }
        let mut committed_any = false;
        for phase in 0..phases {
            if ctx.stop_requested() {
                break 'run; // cooperative cancel/budget: stop mid-step
            }
            candidates.clear();
            policy.candidates(phase, ctx.evaluator(), &mut candidates);
            let kind = policy.kind(phase);
            match ctx.select(kind, &candidates) {
                Some((combo, _)) => {
                    ctx.commit(kind, &combo);
                    policy.committed(phase, &combo);
                    committed_any = true;
                }
                None if policy.required(phase) => break 'run,
                None => {}
            }
        }
        if !committed_any {
            break; // stalled: nothing moved, so nothing ever will
        }
        ctx.step_committed();
    }
}

/// **Algorithm 4** — greedy Edge Removal: one removal phase per step over
/// every current edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Removal;

impl Strategy for Removal {
    fn name(&self) -> &'static str {
        "removal"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        drive_greedy(ctx, self);
    }
}

impl GreedyPolicy for Removal {
    fn num_phases(&self) -> usize {
        1
    }

    fn kind(&self, _phase: usize) -> MoveKind {
        MoveKind::Remove
    }

    fn candidates(&mut self, _phase: usize, ev: &OpacityEvaluator, out: &mut Vec<Edge>) {
        out.extend(ev.graph().edges());
    }

    fn committed(&mut self, _phase: usize, _combo: &[Edge]) {}
}

/// **Algorithm 5** — greedy Edge Removal/Insertion: a removal phase over
/// edges never previously inserted, then an insertion phase over non-edges
/// never previously removed. The `E_D`/`E_A` anti-oscillation sets live in
/// the strategy state (they persist across resumed sweep segments, exactly
/// like a single long run), and candidate collection writes into the
/// driver's reused buffer instead of allocating per step.
#[derive(Debug, Clone, Default)]
pub struct RemovalInsertion {
    removed_set: HashSet<Edge>,
    inserted_set: HashSet<Edge>,
}

impl RemovalInsertion {
    /// Rebuilds the strategy's anti-oscillation state from explicit edit
    /// lists — the checkpoint-resume constructor. At every step boundary
    /// of a run the `E_D`/`E_A` sets equal the run's edit lists (the
    /// greedy loop never revisits an edited edge), so a
    /// [`crate::RunCheckpoint`]'s `removed`/`inserted` lists are exactly
    /// the state a resumed strategy must carry.
    pub fn with_forbidden(
        removed: impl IntoIterator<Item = Edge>,
        inserted: impl IntoIterator<Item = Edge>,
    ) -> Self {
        RemovalInsertion {
            removed_set: removed.into_iter().collect(),
            inserted_set: inserted.into_iter().collect(),
        }
    }

    /// Edges removed so far and therefore barred from re-insertion
    /// (the paper's `E_D`).
    pub fn removed_set(&self) -> &HashSet<Edge> {
        &self.removed_set
    }

    /// Edges inserted so far and therefore barred from re-removal
    /// (the paper's `E_A`).
    pub fn inserted_set(&self) -> &HashSet<Edge> {
        &self.inserted_set
    }
}

impl Strategy for RemovalInsertion {
    fn name(&self) -> &'static str {
        "removal-insertion"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        drive_greedy(ctx, self);
    }
}

impl GreedyPolicy for RemovalInsertion {
    fn num_phases(&self) -> usize {
        2
    }

    fn kind(&self, phase: usize) -> MoveKind {
        if phase == 0 {
            MoveKind::Remove
        } else {
            MoveKind::Insert
        }
    }

    fn candidates(&mut self, phase: usize, ev: &OpacityEvaluator, out: &mut Vec<Edge>) {
        match phase {
            0 => out.extend(ev.graph().edges().filter(|e| !self.inserted_set.contains(e))),
            _ => out.extend(ev.graph().non_edges().filter(|e| !self.removed_set.contains(e))),
        }
    }

    fn committed(&mut self, phase: usize, combo: &[Edge]) {
        let set = if phase == 0 { &mut self.removed_set } else { &mut self.inserted_set };
        set.extend(combo.iter().copied());
    }

    fn required(&self, phase: usize) -> bool {
        phase == 0
    }
}

/// Exact minimum-cardinality edge removal (Section 4's exhaustive
/// approach, tamed): iterative deepening with branch-and-bound, via
/// [`crate::optimal`]. Exponential by Theorem 1 — the `max_edges` cap
/// makes accidental misuse loud rather than eternal.
///
/// Search nodes are charged to the session's trial clock, and each removal
/// of the optimal set is committed as one greedy-style step (so observer
/// event counts equal `outcome.steps` for every strategy). Budgets are
/// honored at the strategy's natural grain: `max_trials` is checked
/// between iterative-deepening levels (a level in flight runs to
/// completion), and `max_steps` truncates the committed set — like the
/// greedy heuristics' caps, a truncated run ends `achieved: false` with a
/// valid partial edit list. Look-ahead and parallelism knobs do not apply
/// to the exact search and are ignored. Under
/// [`crate::SweepMode::Resume`] each θ segment is minimal *given* the
/// previous segments' removals; use `Independent` for per-θ global minima.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactMinRemovals {
    /// Refuse graphs with more edges than this (recommended ≤ 25).
    pub max_edges: usize,
}

impl Default for ExactMinRemovals {
    fn default() -> Self {
        ExactMinRemovals { max_edges: 25 }
    }
}

impl Strategy for ExactMinRemovals {
    fn name(&self) -> &'static str {
        "exact-min-removals"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        if ctx.achieved() {
            return;
        }
        let edges = ctx.evaluator().graph().edge_vec();
        assert!(
            edges.len() <= self.max_edges,
            "exact search on {} edges exceeds the safety cap {}",
            edges.len(),
            self.max_edges
        );
        let theta = ctx.config().theta;
        // Iterative deepening: the first depth with a solution is minimal.
        // Removing every edge satisfies any θ >= 0, so the loop terminates.
        for budget in 1..=edges.len() {
            if ctx.interrupted() {
                return; // trial/step budget spent between deepening levels
            }
            let mut nodes = 0u64;
            let mut chosen = Vec::with_capacity(budget);
            let found = crate::optimal::search(
                ctx.evaluator_mut(),
                &edges,
                0,
                budget,
                theta,
                &mut chosen,
                &mut nodes,
            );
            ctx.add_trials(nodes);
            if found {
                for e in chosen {
                    if ctx.config().max_steps.is_some_and(|cap| ctx.steps() >= cap)
                        || ctx.stop_requested()
                    {
                        return; // step cap: commit a valid prefix, like the greedy caps
                    }
                    ctx.commit(MoveKind::Remove, &[e]);
                    ctx.step_committed();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeSpec;
    use lopacity_graph::Graph;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    /// Regression (issue 3 satellite): an edge that has been inserted must
    /// never re-enter the removal candidate set, and a removed edge must
    /// never re-enter the insertion candidate set — directly against the
    /// strategy's candidate generation, not just the outcome's edit lists.
    #[test]
    fn removal_insertion_candidates_respect_the_forbidden_sets() {
        let g = paper_graph();
        let ev = OpacityEvaluator::new(g, &TypeSpec::DegreePairs, 1);
        let mut strategy = RemovalInsertion::default();
        let inserted = Edge::new(0, 1); // currently an edge of the graph
        let removed = Edge::new(0, 6); // currently a non-edge
        strategy.inserted_set.insert(inserted);
        strategy.removed_set.insert(removed);

        let mut out = Vec::new();
        strategy.candidates(0, &ev, &mut out);
        assert!(!out.is_empty());
        assert!(
            !out.contains(&inserted),
            "previously inserted edge {inserted} offered for re-removal"
        );

        out.clear();
        strategy.candidates(1, &ev, &mut out);
        assert!(!out.is_empty());
        assert!(
            !out.contains(&removed),
            "previously removed edge {removed} offered for re-insertion"
        );
    }

    #[test]
    fn removal_scans_every_current_edge() {
        let g = paper_graph();
        let ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, 1);
        let mut out = Vec::new();
        Removal.candidates(0, &ev, &mut out);
        assert_eq!(out, g.edge_vec());
    }

    #[test]
    fn phase_shapes_match_the_algorithms() {
        assert_eq!(Removal.num_phases(), 1);
        assert_eq!(Removal.kind(0), MoveKind::Remove);
        assert!(Removal.required(0));
        let ri = RemovalInsertion::default();
        assert_eq!(ri.num_phases(), 2);
        assert_eq!(ri.kind(0), MoveKind::Remove);
        assert_eq!(ri.kind(1), MoveKind::Insert);
        assert!(ri.required(0));
        assert!(!ri.required(1));
    }

    #[test]
    fn committed_moves_grow_the_forbidden_sets() {
        let mut ri = RemovalInsertion::default();
        ri.committed(0, &[Edge::new(1, 2), Edge::new(2, 3)]);
        ri.committed(1, &[Edge::new(4, 5)]);
        assert_eq!(ri.removed_set().len(), 2);
        assert!(ri.inserted_set().contains(&Edge::new(4, 5)));
    }

    /// A policy whose phases are all optional and never produce a
    /// candidate must terminate (stall guard), not spin emitting steps.
    #[test]
    fn all_optional_policy_with_no_moves_terminates() {
        struct Inert;
        impl GreedyPolicy for Inert {
            fn num_phases(&self) -> usize {
                2
            }
            fn kind(&self, phase: usize) -> MoveKind {
                if phase == 0 { MoveKind::Remove } else { MoveKind::Insert }
            }
            fn candidates(&mut self, _p: usize, _ev: &OpacityEvaluator, _out: &mut Vec<Edge>) {}
            fn committed(&mut self, _p: usize, _combo: &[Edge]) {}
            fn required(&self, _p: usize) -> bool {
                false
            }
        }
        impl Strategy for Inert {
            fn name(&self) -> &'static str {
                "inert"
            }
            fn execute(&mut self, ctx: &mut crate::RunContext<'_>) {
                drive_greedy(ctx, self);
            }
        }
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        // θ = 0 is unreachable without moves and no budget is set: only
        // the stall guard ends this run.
        let mut session =
            crate::Anonymizer::new(&g, &spec).config(crate::AnonymizeConfig::new(1, 0.0));
        let out = session.run(Inert);
        assert!(!out.achieved);
        assert_eq!(out.steps, 0);
        assert_eq!(out.edits(), 0);
    }

    /// The exact strategy honors the session budgets: `max_steps` caps the
    /// committed removals, `max_trials` stops further deepening levels.
    #[test]
    fn exact_strategy_honors_budgets() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        // Unbudgeted optimum needs >= 3 removals at θ = 0.5.
        let mut session =
            crate::Anonymizer::new(&g, &spec).config(crate::AnonymizeConfig::new(1, 0.5));
        let full = session.run(ExactMinRemovals::default());
        assert!(full.achieved && full.steps >= 3);

        session.set_config(crate::AnonymizeConfig::new(1, 0.5).with_max_steps(2));
        let capped = session.run(ExactMinRemovals::default());
        assert!(!capped.achieved);
        assert_eq!(capped.steps, 2, "step cap must truncate the committed set");
        assert_eq!(capped.removed.len(), 2);

        session.set_config(crate::AnonymizeConfig::new(1, 0.5).with_max_trials(1));
        let starved = session.run(ExactMinRemovals::default());
        assert!(!starved.achieved);
        assert!(starved.removed.is_empty(), "no level after the cap may commit");
    }

    #[test]
    #[should_panic(expected = "safety cap")]
    fn exact_strategy_rejects_oversized_graphs() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session = crate::Anonymizer::new(&g, &spec)
            .config(crate::AnonymizeConfig::new(1, 0.5));
        session.run(ExactMinRemovals { max_edges: 5 });
    }
}
