//! Persistent per-worker evaluator forks for the sharded candidate scan.
//!
//! PR 2's parallel scan forked the [`OpacityEvaluator`] once per worker
//! *per step* — an `O(|V|²)` memcpy of the distance matrix each time,
//! which on exactly the large graphs parallelism is for (ACM-scale,
//! `|V| ≈ 10⁴`, ~25 MB packed) costs more than the scan it parallelizes.
//! A [`ForkSet`] instead owns **long-lived** forks for the duration of a
//! strategy run: each fork is cloned once, at the first scan that needs
//! it (warmup), and thereafter kept state-identical to the main evaluator
//! by replaying every committed move's [`CommitDelta`] — an O(changed
//! cells) memory patch ([`OpacityEvaluator::replay_commit`]), no BFS, no
//! matrix copy. After warmup, a greedy step performs **zero** `O(|V|²)`
//! allocations (counter-asserted in `tests/tests/parallel_equivalence.rs`).
//!
//! The equivalence contract of PR 2 is untouched: a fork is
//! state-identical to the per-step clone it replaces (same distances,
//! counts, and graph — byte-identical on the dense distance store;
//! logically identical on the sparse one, whose physical layout may
//! compact at different points without observable difference), so trial
//! results — and therefore the merged tracker argmin — are bit-for-bit
//! those of the sequential scan, on either backend.

use crate::evaluator::{BatchDelta, CommitDelta, OpacityEvaluator};

/// The persistent worker forks of one strategy run, plus the allocation
/// accounting the zero-copy guarantee is asserted against.
#[derive(Default)]
pub(crate) struct ForkSet {
    forks: Vec<OpacityEvaluator>,
    /// Full `O(|V|²)` evaluator clones performed (warmup cost; never grows
    /// after the widest scan of the run has run once).
    clones: u64,
    /// Committed moves replayed onto forks (each O(changed cells)).
    replays: u64,
}

impl ForkSet {
    /// A fresh, empty fork set (no clones until a sharded scan asks).
    pub fn new() -> Self {
        ForkSet::default()
    }

    /// Whether warmup has happened — used by the scan's `Auto` fallback
    /// threshold, since a warm scan no longer pays per-worker clones.
    pub fn warm(&self) -> bool {
        !self.forks.is_empty()
    }

    /// Full evaluator clones performed so far.
    pub fn clones(&self) -> u64 {
        self.clones
    }

    /// Fork-sync replay applications performed so far (per fork, per
    /// replay call — a batched replay counts once per fork, that being
    /// the point).
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Grows the set to at least `count` forks of `ev` (which must be the
    /// main evaluator in its current, trial-clean state). Existing forks
    /// are already in sync and are never re-cloned.
    pub fn ensure(&mut self, ev: &OpacityEvaluator, count: usize) {
        while self.forks.len() < count {
            self.forks.push(ev.clone());
            self.clones += 1;
        }
    }

    /// The first `count` forks, for use as scan worker states.
    pub fn first_mut(&mut self, count: usize) -> &mut [OpacityEvaluator] {
        &mut self.forks[..count]
    }

    /// Replays one committed move onto every fork, keeping them
    /// state-identical to the main evaluator. O(forks × changed cells);
    /// sequential on purpose — the patch is memcpy-scale, far below the
    /// cost of a thread spawn.
    pub fn replay(&mut self, delta: &CommitDelta) {
        for fork in &mut self.forks {
            fork.replay_commit(delta);
        }
        self.replays += self.forks.len() as u64;
    }

    /// Replays a whole coalesced [`BatchDelta`] onto every fork in **one**
    /// application per fork — the churn batch path. O(forks × distinct
    /// cells) however many events the batch absorbed.
    pub fn replay_batch(&mut self, batch: &BatchDelta) {
        if batch.is_empty() {
            return;
        }
        for fork in &mut self.forks {
            fork.replay_batch(batch);
        }
        self.replays += self.forks.len() as u64;
    }

    /// Debug-mode guard for the fork contract: every fork must have seen
    /// exactly the main evaluator's net mutations (same revision, same
    /// edge count). A strategy that mutates the evaluator through
    /// `RunContext::evaluator_mut` and leaves a net change applied without
    /// committing it desyncs the forks *silently* — trials against them
    /// would then differ from the sequential scan — so the next sharded
    /// scan fails loudly here instead (debug builds; free in release).
    pub fn debug_assert_in_sync(&self, ev: &OpacityEvaluator) {
        if cfg!(debug_assertions) {
            for (i, fork) in self.forks.iter().enumerate() {
                assert_eq!(
                    fork.revision(),
                    ev.revision(),
                    "fork {i} is out of sync: a strategy mutated the evaluator without \
                     routing the net change through RunContext::commit"
                );
                debug_assert_eq!(
                    fork.graph().num_edges(),
                    ev.graph().num_edges(),
                    "fork {i} graph diverged from the main evaluator"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeSpec;
    use lopacity_graph::{Edge, Graph};

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn ensure_clones_once_per_fork() {
        let ev = OpacityEvaluator::new(paper_graph(), &TypeSpec::DegreePairs, 2);
        let mut forks = ForkSet::new();
        assert!(!forks.warm());
        forks.ensure(&ev, 3);
        assert!(forks.warm());
        assert_eq!(forks.clones(), 3);
        // Re-ensuring at or below the current width clones nothing.
        forks.ensure(&ev, 3);
        forks.ensure(&ev, 1);
        assert_eq!(forks.clones(), 3);
        forks.ensure(&ev, 5);
        assert_eq!(forks.clones(), 5);
    }

    #[test]
    fn replay_keeps_every_fork_in_sync() {
        let mut main = OpacityEvaluator::new(paper_graph(), &TypeSpec::DegreePairs, 2);
        let mut forks = ForkSet::new();
        forks.ensure(&main, 2);
        for e in [Edge::new(1, 4), Edge::new(2, 5)] {
            let token = main.apply_remove(e);
            let delta = main.commit_delta(&token);
            forks.replay(&delta);
        }
        assert_eq!(forks.replays, 4);
        for fork in forks.first_mut(2) {
            assert_eq!(fork.graph(), main.graph());
            assert_eq!(fork.counts(), main.counts());
            fork.verify_consistency().unwrap();
        }
    }
}
