//! Progress observation for anonymization runs.
//!
//! A [`ProgressObserver`] attached to an [`crate::Anonymizer`] receives one
//! [`StepEvent`] per committed greedy step (and per committed removal of the
//! exact strategy), bracketed by [`ProgressObserver::on_run_start`] /
//! [`ProgressObserver::on_run_end`] per run — or per θ segment of a sweep.
//! Observers are strictly read-only taps: they see copies of the run
//! counters and cannot influence the trajectory, so an attached observer
//! never changes an outcome (property: same outcome with and without one —
//! see `tests/tests/progress_observer.rs`).
//!
//! Long-running-server workloads hang cancellation, metrics, and streaming
//! progress UIs off this trait; the crate itself ships two tiny impls:
//! [`NoOpObserver`] (the default) and [`CountingObserver`] (run/step/trial
//! accounting, used by the sweep-sharing acceptance tests).

use crate::result::AnonymizationOutcome;

/// Context of a starting run (or θ segment of a sweep).
#[derive(Debug, Clone, Copy)]
pub struct RunInfo<'a> {
    /// [`crate::Strategy::name`] of the executing strategy.
    pub strategy: &'a str,
    /// Confidence threshold θ this run drives toward.
    pub theta: f64,
    /// Path-length threshold L.
    pub l: u8,
    /// `maxLO` of the graph the run starts from.
    pub initial_lo: f64,
    /// `N(maxLO)` of the graph the run starts from.
    pub initial_n_at_max: usize,
    /// Candidate evaluations already on the clock when this run starts
    /// (non-zero for resumed sweep segments, which share counters).
    pub trials_before: u64,
    /// Steps already on the clock when this run starts.
    pub steps_before: usize,
}

/// One committed greedy step.
#[derive(Debug, Clone, Copy)]
pub struct StepEvent {
    /// Confidence threshold θ of the run emitting the event.
    pub theta: f64,
    /// 1-based step index. Resumed sweep segments continue the count.
    pub step: usize,
    /// `maxLO` after the step's moves were committed.
    pub max_lo: f64,
    /// `N(maxLO)` after the step's moves were committed.
    pub n_at_max: usize,
    /// Cumulative candidate evaluations so far.
    pub trials: u64,
    /// Cumulative edge edits (removals + insertions) so far.
    pub edits: usize,
    /// Cumulative removals so far.
    pub removed: usize,
    /// Cumulative insertions so far.
    pub inserted: usize,
    /// Cumulative full `O(|V|²)` evaluator clones for scan workers (the
    /// persistent-fork warmup). Constant from the first sharded scan on —
    /// the zero-copy tests assert the deltas between steps are zero after
    /// warmup. A performance counter: it varies with the parallelism knob
    /// while every other field is parallelism-invariant.
    pub fork_clones: u64,
}

/// Read-only tap on a run's progress. Every method has a no-op default, so
/// implementors override only what they need.
pub trait ProgressObserver {
    /// A run (or sweep θ segment) is about to execute.
    fn on_run_start(&mut self, _info: &RunInfo<'_>) {}

    /// A greedy step committed its moves.
    fn on_step(&mut self, _event: &StepEvent) {}

    /// The run produced its outcome. For resumed sweep segments the outcome
    /// is cumulative from the start of the sweep (exactly what a standalone
    /// run at the segment's θ would report).
    fn on_run_end(&mut self, _outcome: &AnonymizationOutcome) {}
}

/// The default observer: ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOpObserver;

impl ProgressObserver for NoOpObserver {}

/// Counts runs, steps, and candidate evaluations; keeps the last event.
///
/// `total_trials` sums the *work actually performed* per observed run —
/// for resumed sweep segments it adds only each segment's newly spent
/// trials, so a resumed sweep's total is directly comparable to the sum
/// over independent runs (the APSP-sharing acceptance criterion).
#[derive(Debug, Clone, Default)]
pub struct CountingObserver {
    /// `on_run_start` calls seen.
    pub runs_started: usize,
    /// `on_run_end` calls seen.
    pub runs_finished: usize,
    /// `on_step` calls seen.
    pub events: usize,
    /// The most recent step event.
    pub last_event: Option<StepEvent>,
    /// Candidate evaluations actually performed across observed runs.
    pub total_trials: u64,
    /// Trial clock at the current run's start (for per-run deltas).
    run_start_trials: u64,
}

impl ProgressObserver for CountingObserver {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.runs_started += 1;
        self.run_start_trials = info.trials_before;
    }

    fn on_step(&mut self, event: &StepEvent) {
        self.events += 1;
        self.last_event = Some(*event);
    }

    fn on_run_end(&mut self, outcome: &AnonymizationOutcome) {
        self.runs_finished += 1;
        self.total_trials += outcome.trials - self.run_start_trials;
        self.run_start_trials = outcome.trials;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity_graph::Graph;

    fn outcome(trials: u64) -> AnonymizationOutcome {
        AnonymizationOutcome {
            graph: Graph::new(2),
            removed: Vec::new(),
            inserted: Vec::new(),
            steps: 0,
            trials,
            final_lo: 0.0,
            final_n_at_max: 0,
            achieved: true,
            fork_clones: 0,
        }
    }

    fn info(trials_before: u64) -> RunInfo<'static> {
        RunInfo {
            strategy: "test",
            theta: 0.5,
            l: 1,
            initial_lo: 1.0,
            initial_n_at_max: 1,
            trials_before,
            steps_before: 0,
        }
    }

    #[test]
    fn counting_observer_sums_per_run_deltas() {
        let mut obs = CountingObserver::default();
        // Two independent runs: 10 + 7 trials.
        obs.on_run_start(&info(0));
        obs.on_run_end(&outcome(10));
        obs.on_run_start(&info(0));
        obs.on_run_end(&outcome(7));
        assert_eq!(obs.total_trials, 17);
        assert_eq!(obs.runs_started, 2);
        assert_eq!(obs.runs_finished, 2);
    }

    #[test]
    fn counting_observer_handles_resumed_segments() {
        let mut obs = CountingObserver::default();
        // A resumed sweep: cumulative clocks 10, 10, 16 — total work is 16.
        obs.on_run_start(&info(0));
        obs.on_run_end(&outcome(10));
        obs.on_run_start(&info(10));
        obs.on_run_end(&outcome(10)); // carried segment: no new work
        obs.on_run_start(&info(10));
        obs.on_run_end(&outcome(16));
        assert_eq!(obs.total_trials, 16);
    }

    #[test]
    fn noop_observer_is_truly_inert() {
        let mut obs = NoOpObserver;
        obs.on_run_start(&info(0));
        obs.on_run_end(&outcome(3));
    }
}
