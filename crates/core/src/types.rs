//! Vertex-pair type systems (paper Definition 1).
//!
//! A *type* is a set of distinct vertex pairs the data vendor considers
//! vulnerable. The model is agnostic about what defines a type; this module
//! provides the two systems the paper uses:
//!
//! * **Degree pairs** (the paper's working choice, Section 4): the type of a
//!   pair `(v, w)` is the unordered pair of their degrees *in the original
//!   graph*. Every vertex pair belongs to exactly one type. Degrees are
//!   frozen at construction — the publication model publishes original
//!   degrees, and the algorithms never refresh them as edges change.
//! * **Explicit pair sets** (used by the Theorem 1 reduction): each type is
//!   an explicit list of vertex pairs; unlisted pairs belong to no type.

use lopacity_graph::{Graph, VertexId};
use std::collections::HashMap;

/// Identifier of a vertex-pair type within a [`TypeSystem`].
pub type TypeId = u32;

/// Declarative description of a type system, resolved against a concrete
/// graph by [`TypeSystem::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeSpec {
    /// One type per unordered pair of original degrees.
    DegreePairs,
    /// Explicit pair lists: `types[t]` is the set of pairs of type `t`.
    Explicit(Vec<Vec<(VertexId, VertexId)>>),
    /// One type per unordered pair of vertex *classes* (`classes[v]` is the
    /// class label of vertex `v`). Models adversaries with categorical
    /// background knowledge — the criminal/suspect roles of the paper's
    /// Figure 2 — and is the "other types of structural knowledge" extension
    /// Definition 1 anticipates. Every pair belongs to exactly one type.
    VertexClasses(Vec<u32>),
}

/// A resolved type system: maps pairs to types and knows each type's
/// cardinality `|T|` (the opacity denominator, which includes unreachable
/// pairs per Definition 2).
#[derive(Debug, Clone)]
pub struct TypeSystem {
    kind: Kind,
    denoms: Vec<u64>,
    labels: Vec<String>,
}

#[derive(Debug, Clone)]
enum Kind {
    /// Pair type = unordered pair of per-vertex values (degrees or class
    /// labels).
    ByVertexValue {
        /// The frozen per-vertex value.
        values: Vec<u32>,
        /// Dense class index per distinct value.
        class_of_value: Vec<u32>,
        /// Number of distinct classes.
        num_classes: usize,
        /// Whether the values are original degrees (enables
        /// [`TypeSystem::original_degree`]).
        degree_based: bool,
    },
    Explicit {
        type_of_pair: HashMap<(VertexId, VertexId), TypeId>,
    },
}

impl TypeSystem {
    /// Resolves a [`TypeSpec`] against `graph` (whose *current* degrees
    /// become the frozen original degrees for `DegreePairs`).
    ///
    /// # Panics
    /// For explicit specs: panics on out-of-range vertices, self-pairs, or a
    /// pair assigned to two different types (Definition 1: at most one type
    /// per pair).
    pub fn build(graph: &Graph, spec: &TypeSpec) -> Self {
        match spec {
            TypeSpec::DegreePairs => {
                let n = graph.num_vertices();
                let degrees: Vec<u32> =
                    (0..n).map(|v| graph.degree(v as VertexId) as u32).collect();
                Self::by_vertex_value(degrees, "P", true)
            }
            TypeSpec::VertexClasses(classes) => {
                assert_eq!(
                    classes.len(),
                    graph.num_vertices(),
                    "one class label per vertex required"
                );
                Self::by_vertex_value(classes.clone(), "C", false)
            }
            TypeSpec::Explicit(lists) => Self::explicit(graph, lists),
        }
    }

    fn by_vertex_value(values: Vec<u32>, prefix: &str, degree_based: bool) -> Self {
        let max_value = values.iter().copied().max().unwrap_or(0) as usize;
        // Dense class ids over the distinct values present.
        let mut vertices_per_value = vec![0u64; max_value + 1];
        for &v in &values {
            vertices_per_value[v as usize] += 1;
        }
        let mut class_of_value = vec![u32::MAX; max_value + 1];
        let mut class_value = Vec::new();
        let mut class_sizes = Vec::new();
        for (v, &count) in vertices_per_value.iter().enumerate() {
            if count > 0 {
                class_of_value[v] = class_value.len() as u32;
                class_value.push(v);
                class_sizes.push(count);
            }
        }
        let num_classes = class_value.len();
        // Triangular-with-diagonal type ids over (class a <= class b).
        let num_types = num_classes * (num_classes + 1) / 2;
        let mut denoms = vec![0u64; num_types];
        let mut labels = vec![String::new(); num_types];
        for a in 0..num_classes {
            for b in a..num_classes {
                let t = tri_diag_index(a, b, num_classes);
                let (na, nb) = (class_sizes[a], class_sizes[b]);
                denoms[t] = if a == b { na * (na - 1) / 2 } else { na * nb };
                labels[t] = format!("{prefix}{{{},{}}}", class_value[a], class_value[b]);
            }
        }
        TypeSystem {
            kind: Kind::ByVertexValue { values, class_of_value, num_classes, degree_based },
            denoms,
            labels,
        }
    }

    fn explicit(graph: &Graph, lists: &[Vec<(VertexId, VertexId)>]) -> Self {
        let n = graph.num_vertices();
        let mut type_of_pair = HashMap::new();
        let mut denoms = vec![0u64; lists.len()];
        let mut labels = Vec::with_capacity(lists.len());
        for (t, pairs) in lists.iter().enumerate() {
            labels.push(format!("T{t}"));
            for &(a, b) in pairs {
                assert!(
                    (a as usize) < n && (b as usize) < n,
                    "pair ({a}, {b}) out of range (n={n})"
                );
                assert_ne!(a, b, "a vertex cannot pair with itself");
                let key = (a.min(b), a.max(b));
                let previous = type_of_pair.insert(key, t as TypeId);
                assert!(
                    previous.is_none() || previous == Some(t as TypeId),
                    "pair {key:?} assigned to two types ({previous:?} and {t})"
                );
                denoms[t] += 1;
            }
        }
        TypeSystem { kind: Kind::Explicit { type_of_pair }, denoms, labels }
    }

    /// The type of the pair `(i, j)`, if any. Order-insensitive.
    #[inline]
    pub fn type_of(&self, i: VertexId, j: VertexId) -> Option<TypeId> {
        debug_assert_ne!(i, j);
        match &self.kind {
            Kind::ByVertexValue { values, class_of_value, num_classes, .. } => {
                let ca = class_of_value[values[i as usize] as usize] as usize;
                let cb = class_of_value[values[j as usize] as usize] as usize;
                let (a, b) = if ca <= cb { (ca, cb) } else { (cb, ca) };
                Some(tri_diag_index(a, b, *num_classes) as TypeId)
            }
            Kind::Explicit { type_of_pair } => {
                type_of_pair.get(&(i.min(j), i.max(j))).copied()
            }
        }
    }

    /// Number of types (including types with zero pairs).
    pub fn num_types(&self) -> usize {
        self.denoms.len()
    }

    /// `|T|` per type: the opacity denominators.
    pub fn denominators(&self) -> &[u64] {
        &self.denoms
    }

    /// Human-readable label per type (`P{g,h}` for degree pairs).
    pub fn label(&self, t: TypeId) -> &str {
        &self.labels[t as usize]
    }

    /// Original degree of a vertex (degree-pair systems only).
    pub fn original_degree(&self, v: VertexId) -> Option<u32> {
        match &self.kind {
            Kind::ByVertexValue { values, degree_based: true, .. } => {
                values.get(v as usize).copied()
            }
            _ => None,
        }
    }
}

/// Index of `(a, b)` with `a <= b` in the upper triangle *with* diagonal of
/// a `c x c` matrix, row-major.
#[inline]
fn tri_diag_index(a: usize, b: usize, c: usize) -> usize {
    debug_assert!(a <= b && b < c);
    // Cells before row a: sum_{r<a} (c - r) = a(2c - a + 1)/2.
    a * (2 * c - a + 1) / 2 + (b - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn tri_diag_index_is_bijective() {
        for c in 1..8usize {
            let mut seen = std::collections::HashSet::new();
            for a in 0..c {
                for b in a..c {
                    assert!(seen.insert(tri_diag_index(a, b, c)));
                }
            }
            assert_eq!(seen.len(), c * (c + 1) / 2);
            assert!(seen.into_iter().max().unwrap() == c * (c + 1) / 2 - 1);
        }
    }

    #[test]
    fn degree_types_of_paper_graph() {
        // Degrees {1, 2, 3, 4} -> 4 classes -> 10 types.
        let ts = TypeSystem::build(&paper_graph(), &TypeSpec::DegreePairs);
        assert_eq!(ts.num_types(), 10);
        // Class sizes: deg1 x1 (v6), deg2 x2 (v0, v3), deg3 x1 (v5), deg4 x3.
        let denom_of = |i: VertexId, j: VertexId| {
            ts.denominators()[ts.type_of(i, j).unwrap() as usize]
        };
        assert_eq!(denom_of(6, 0), 2); // (1,2): 1 * 2
        assert_eq!(denom_of(0, 3), 1); // (2,2): C(2,2) = 1
        assert_eq!(denom_of(1, 2), 3); // (4,4): C(3,2) = 3
        assert_eq!(denom_of(5, 1), 3); // (3,4): 1 * 3
        assert_eq!(denom_of(6, 5), 1); // (1,3): 1 * 1
    }

    #[test]
    fn degree_type_is_order_insensitive_and_frozen() {
        let g = paper_graph();
        let ts = TypeSystem::build(&g, &TypeSpec::DegreePairs);
        assert_eq!(ts.type_of(0, 5), ts.type_of(5, 0));
        assert_eq!(ts.original_degree(1), Some(4));
        // The system is frozen: mutating the graph afterwards does not
        // change type assignments (the TypeSystem holds its own copy).
        let mut g2 = g.clone();
        g2.remove_edge(1, 2);
        assert_eq!(ts.original_degree(1), Some(4));
    }

    #[test]
    fn degree_labels_name_the_degrees() {
        let ts = TypeSystem::build(&paper_graph(), &TypeSpec::DegreePairs);
        let t = ts.type_of(5, 1).unwrap(); // degree 3 with degree 4
        assert_eq!(ts.label(t), "P{3,4}");
    }

    #[test]
    fn explicit_types_cover_only_listed_pairs() {
        let g = paper_graph();
        let spec = TypeSpec::Explicit(vec![vec![(0, 3), (3, 0)], vec![(1, 6)]]);
        let ts = TypeSystem::build(&g, &spec);
        assert_eq!(ts.num_types(), 2);
        assert_eq!(ts.type_of(0, 3), Some(0));
        assert_eq!(ts.type_of(3, 0), Some(0));
        assert_eq!(ts.type_of(1, 6), Some(1));
        assert_eq!(ts.type_of(0, 1), None);
        // (0,3) listed twice (in both orders) -> denominator counts both
        // occurrences; Definition 1 speaks of distinct pairs, so callers
        // should list each pair once — but double listing the same type is
        // tolerated and counted.
        assert_eq!(ts.denominators()[0], 2);
        assert_eq!(ts.denominators()[1], 1);
    }

    #[test]
    #[should_panic(expected = "two types")]
    fn explicit_rejects_conflicting_assignment() {
        let g = paper_graph();
        let spec = TypeSpec::Explicit(vec![vec![(0, 3)], vec![(3, 0)]]);
        TypeSystem::build(&g, &spec);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_rejects_bad_vertices() {
        let spec = TypeSpec::Explicit(vec![vec![(0, 99)]]);
        TypeSystem::build(&paper_graph(), &spec);
    }

    #[test]
    fn empty_graph_degree_types() {
        let ts = TypeSystem::build(&Graph::new(0), &TypeSpec::DegreePairs);
        assert_eq!(ts.num_types(), 0);
    }

    #[test]
    fn uniform_degree_graph_has_single_type() {
        let cycle = Graph::from_edges(5, (0..5u32).map(|i| (i, (i + 1) % 5))).unwrap();
        let ts = TypeSystem::build(&cycle, &TypeSpec::DegreePairs);
        assert_eq!(ts.num_types(), 1);
        assert_eq!(ts.denominators(), &[10]);
    }

    #[test]
    fn vertex_classes_partition_pairs_by_role() {
        // Figure 2's roles: criminal (0), suspect (1), bystander (2).
        let g = paper_graph();
        let classes = vec![0u32, 1, 1, 1, 2, 2, 2];
        let ts = TypeSystem::build(&g, &TypeSpec::VertexClasses(classes));
        // Three classes -> six types.
        assert_eq!(ts.num_types(), 6);
        // criminal-suspect pairs: 1 x 3.
        let t = ts.type_of(0, 2).unwrap();
        assert_eq!(ts.denominators()[t as usize], 3);
        assert_eq!(ts.label(t), "C{0,1}");
        // suspect-suspect pairs: C(3,2).
        let t = ts.type_of(1, 3).unwrap();
        assert_eq!(ts.denominators()[t as usize], 3);
        // Not degree based.
        assert_eq!(ts.original_degree(0), None);
    }

    #[test]
    fn vertex_classes_drive_opacity_and_anonymization() {
        let g = paper_graph();
        // Make "class 7 with class 9" the sensitive relation; labels need
        // not be dense.
        let spec = TypeSpec::VertexClasses(vec![7, 9, 9, 7, 9, 7, 7]);
        let report = crate::opacity::opacity_report(&g, &spec, 1);
        assert!(report.max_lo.as_f64() > 0.0);
        let config = crate::AnonymizeConfig::new(1, 0.3).with_seed(4);
        let out = crate::Anonymizer::new(&g, &spec).config(config).run(crate::Removal);
        assert!(out.achieved);
        // Certify against the same (graph-independent) class spec.
        let after = crate::opacity::opacity_report(&out.graph, &spec, 1);
        assert!(after.max_lo.satisfies(0.3));
    }

    #[test]
    #[should_panic(expected = "one class label per vertex")]
    fn vertex_classes_require_full_labelling() {
        TypeSystem::build(&paper_graph(), &TypeSpec::VertexClasses(vec![0, 1]));
    }
}
