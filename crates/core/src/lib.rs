//! **L-opacity: linkage-aware graph anonymization** — a Rust implementation
//! of Nobari, Karras, Pang and Bressan, EDBT 2014.
//!
//! # The privacy model
//!
//! Publishing a social graph with identities removed still leaks *linkage*:
//! an adversary who knows the degrees of two individuals can sometimes infer
//! with certainty that they are connected by a short path, even when neither
//! node can be re-identified. L-opacity bounds that confidence: a graph is
//! **L-opaque with respect to θ** when, for every vertex-pair type `T` of
//! interest, the fraction of `T`'s pairs lying at geodesic distance `≤ L`
//! does not exceed `θ` (Definitions 1–3; the decision threshold follows
//! Algorithms 4/5, which accept when `maxLO ≤ θ`).
//!
//! # What this crate provides
//!
//! * [`types`] — vertex-pair type systems: the paper's default
//!   (*original-degree pairs*) plus explicit pair sets (used by the 3-SAT
//!   hardness construction);
//! * [`opacity`] — Algorithm 1 (`maxLO`), per-type opacity matrices;
//! * [`evaluator`] — an incremental trial/apply/undo opacity evaluator that
//!   makes the greedy heuristics tractable (property-tested equal to full
//!   recomputation);
//! * [`removal`] — Algorithm 4, greedy **Edge Removal** with look-ahead;
//! * [`removal_insertion`] — Algorithm 5, **Edge Removal/Insertion**, which
//!   keeps the edge count constant;
//! * [`config`] / [`result`] — tuning knobs and rich run reports.
//!
//! # Quickstart
//!
//! ```
//! use lopacity::{AnonymizeConfig, TypeSpec};
//! use lopacity_graph::Graph;
//!
//! // The paper's Figure 1 graph (0-indexed).
//! let g = Graph::from_edges(7, [
//!     (0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6),
//! ]).unwrap();
//!
//! // Its opacity at L = 1 is 1.0: some degree pair type is fully linked.
//! let report = lopacity::opacity::opacity_report(&g, &TypeSpec::DegreePairs, 1);
//! assert_eq!(report.max_lo.as_f64(), 1.0);
//!
//! // Anonymize: confidence at most 2/3 for single-edge linkage.
//! let config = AnonymizeConfig::new(1, 2.0 / 3.0);
//! let outcome = lopacity::removal::edge_removal(&g, &TypeSpec::DegreePairs, &config);
//! assert!(outcome.achieved);
//! // Certify against the publication model: original degrees, published
//! // distances.
//! let after = lopacity::opacity::opacity_report_against_original(
//!     &g, &outcome.graph, &TypeSpec::DegreePairs, 1,
//! );
//! assert!(after.max_lo.as_f64() <= 2.0 / 3.0 + 1e-12);
//! ```

pub mod config;
pub mod evaluator;
pub mod lo;
pub mod opacity;
pub mod optimal;
pub mod removal;
pub mod removal_insertion;
pub mod result;
mod tracker;
pub mod types;

pub use config::{AnonymizeConfig, LookaheadMode};
pub use lopacity_util::Parallelism;
pub use evaluator::OpacityEvaluator;
pub use lo::LoAssessment;
pub use opacity::{opacity_report, OpacityReport};
pub use removal::edge_removal;
pub use removal_insertion::edge_removal_insertion;
pub use result::AnonymizationOutcome;
pub use types::{TypeSpec, TypeSystem};
