//! **L-opacity: linkage-aware graph anonymization** — a Rust implementation
//! of Nobari, Karras, Pang and Bressan, EDBT 2014.
//!
//! # The privacy model
//!
//! Publishing a social graph with identities removed still leaks *linkage*:
//! an adversary who knows the degrees of two individuals can sometimes infer
//! with certainty that they are connected by a short path, even when neither
//! node can be re-identified. L-opacity bounds that confidence: a graph is
//! **L-opaque with respect to θ** when, for every vertex-pair type `T` of
//! interest, the fraction of `T`'s pairs lying at geodesic distance `≤ L`
//! does not exceed `θ` (Definitions 1–3; the decision threshold follows
//! Algorithms 4/5, which accept when `maxLO ≤ θ`).
//!
//! # Quickstart: the [`Anonymizer`] session
//!
//! A session builds the expensive incremental evaluator (full truncated
//! APSP + per-type counters) once and then runs any number of pluggable
//! [`Strategy`] values against it — the paper's Algorithm 4
//! ([`Removal`]), Algorithm 5 ([`RemovalInsertion`]), or the exact
//! baseline ([`ExactMinRemovals`]):
//!
//! ```
//! use lopacity::{Anonymizer, AnonymizeConfig, Removal, RemovalInsertion, TypeSpec};
//! use lopacity_graph::Graph;
//!
//! // The paper's Figure 1 graph (0-indexed).
//! let g = Graph::from_edges(7, [
//!     (0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6),
//! ]).unwrap();
//! let spec = TypeSpec::DegreePairs;
//!
//! let mut session = Anonymizer::new(&g, &spec)
//!     .config(AnonymizeConfig::new(1, 2.0 / 3.0));
//!
//! // Its opacity at L = 1 is 1.0: some degree-pair type is fully linked.
//! assert_eq!(session.initial_assessment().as_f64(), 1.0);
//!
//! // Anonymize: confidence at most 2/3 for single-edge linkage. Both
//! // heuristics reuse the evaluator built above.
//! let outcome = session.run(Removal);
//! assert!(outcome.achieved);
//! let alternative = session.run(RemovalInsertion::default());
//!
//! // Certify against the publication model: original degrees, published
//! // distances.
//! let after = lopacity::opacity::opacity_report_against_original(
//!     &g, &outcome.graph, &TypeSpec::DegreePairs, 1,
//! );
//! assert!(after.max_lo.as_f64() <= 2.0 / 3.0 + 1e-12);
//! # let _ = alternative;
//! ```
//!
//! # Multi-θ sweeps (a Figure-9-style privacy/utility curve)
//!
//! The paper's experiments evaluate each heuristic across a *sweep* of θ
//! values on the same graph. [`Anonymizer::sweep`] runs the θ values in
//! descending order; in the default [`SweepMode::Resume`] each θ resumes
//! from the previous θ's edited graph, evaluator state, and RNG, so the
//! whole curve costs one trajectory instead of one per point — and every
//! cumulative outcome is still bit-for-bit what a standalone run at that θ
//! would return (the greedy trajectories do not depend on θ; it only
//! decides when to stop). [`SweepMode::Independent`] opts out and
//! reproduces standalone runs exactly, still sharing the initial build:
//!
//! ```
//! use lopacity::{Anonymizer, AnonymizeConfig, Removal, TypeSpec};
//! use lopacity_graph::Graph;
//!
//! let g = Graph::from_edges(7, [
//!     (0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6),
//! ]).unwrap();
//! let spec = TypeSpec::DegreePairs;
//! let mut session = Anonymizer::new(&g, &spec)
//!     .config(AnonymizeConfig::new(1, 0.5).with_seed(7));
//!
//! // One pass, three curve points: (θ, edits) is the Figure-9-style series.
//! for run in session.sweep(&[0.9, 0.66, 0.5], Removal) {
//!     println!("θ={:.2}: {} edits, maxLO {:.3} ({} new trials)",
//!         run.theta, run.outcome.edits(), run.outcome.final_lo, run.new_trials);
//! }
//! ```
//!
//! Attach a [`ProgressObserver`] (see [`progress`]) to stream per-step
//! events — step index, `maxLO`, `N`, trial and edit counters — to logs,
//! metrics, or a cancellation watchdog; observers never change outcomes.
//!
//! # Large graphs: the sparse distance store
//!
//! Sessions keep truncated distances behind an adaptive
//! [`StoreBackend`]: small or within-L-dense graphs get the packed
//! `Θ(|V|²)` matrix, while large sparse graphs (the default resolution
//! beyond ~4k vertices when the sampled within-L density allows) get a
//! sparse within-L store — `O(Σ |ball_L(v)|)` memory and ball-bounded
//! trial scans, which is what makes `|V| = 10⁵` runs practical (~24 MB
//! resident instead of a 2.5 GB matrix; see `BENCH_5.json`). The choice
//! never changes results, only footprint and speed; force it per run
//! with [`AnonymizeConfig::with_store`]:
//!
//! ```
//! use lopacity::{AnonymizeConfig, StoreBackend};
//! let config = AnonymizeConfig::new(2, 0.5).with_store(StoreBackend::Sparse);
//! assert_eq!(config.store, StoreBackend::Sparse);
//! ```
//!
//! # Module map
//!
//! * [`session`] — the [`Anonymizer`] session API (the maintained entry
//!   point), sweeps, and the [`RunContext`] strategies execute against;
//! * [`churn`] — the [`ChurnSession`] live-graph loop: external
//!   [`EdgeEvent`] streams applied as incremental deltas, violation
//!   detection, and certified [`RepairPatch`] emission;
//! * [`strategy`] — the [`Strategy`] / [`GreedyPolicy`] traits, the shared
//!   greedy driver, and the three built-in strategies;
//! * [`model`] — the [`PrivacyModel`] trait (certify / violations /
//!   repair) that lets rival anonymity notions — `crates/models`'
//!   k-degree and (k,ℓ)-adjacency anonymity — run behind the same
//!   session, plus [`LOpacity`], the paper's notion as a model;
//! * [`progress`] — [`ProgressObserver`] and the step-event types;
//! * [`types`] — vertex-pair type systems: the paper's default
//!   (*original-degree pairs*) plus explicit pair sets (used by the 3-SAT
//!   hardness construction);
//! * [`opacity`] — Algorithm 1 (`maxLO`), per-type opacity matrices;
//! * [`evaluator`] — an incremental trial/apply/undo opacity evaluator that
//!   makes the greedy heuristics tractable (property-tested equal to full
//!   recomputation);
//! * [`removal`] / [`removal_insertion`] — the deprecated free-function
//!   wrappers for Algorithms 4/5 (bit-for-bit equal to the session API)
//!   plus the sharded move-selection machinery;
//! * [`optimal`] — exact minimum-removal search for small instances;
//! * [`config`] / [`result`] — tuning knobs and rich run reports.

pub mod churn;
pub mod config;
pub mod control;
pub mod evaluator;
mod forks;
pub mod lo;
pub mod model;
pub mod opacity;
pub mod optimal;
pub mod progress;
pub mod removal;
pub mod removal_insertion;
pub mod result;
pub mod session;
pub mod strategy;
mod tracker;
pub mod types;

pub use churn::{BatchReport, ChurnSession, EdgeEvent, RepairPatch};
pub use config::{AnonymizeConfig, LookaheadMode};
pub use control::{RunCheckpoint, RunControl};
pub use evaluator::{BatchDelta, CommitDelta, OpacityEvaluator};
pub use lo::LoAssessment;
pub use lopacity_apsp::{estimate_footprint, StoreBackend};
pub use lopacity_util::Parallelism;
pub use model::{LOpacity, PrivacyModel};
pub use opacity::{opacity_report, OpacityReport};
pub use progress::{CountingObserver, NoOpObserver, ProgressObserver, RunInfo, StepEvent};
pub use result::AnonymizationOutcome;
pub use session::{Anonymizer, LSweepRun, RunContext, SweepMode, SweepRun};
pub use strategy::{
    drive_greedy, ExactMinRemovals, GreedyPolicy, MoveKind, Removal, RemovalInsertion, Strategy,
};
pub use types::{TypeSpec, TypeSystem};

#[allow(deprecated)]
pub use removal::edge_removal;
#[allow(deprecated)]
pub use removal_insertion::edge_removal_insertion;

#[cfg(test)]
mod send_assertions {
    //! Compile-time `Send` guarantees for the service layer: a daemon
    //! worker thread owns an evaluator or a churn session outright, and a
    //! handler thread holds `RunControl` clones — all of that must cross
    //! thread boundaries. Kept as tests so a future `Rc`/raw-pointer field
    //! fails loudly here instead of deep inside the daemon.

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn service_layer_types_are_send() {
        assert_send::<crate::OpacityEvaluator>();
        assert_send::<crate::ChurnSession>();
        assert_send::<crate::AnonymizationOutcome>();
        assert_send::<crate::BatchDelta>();
        assert_send::<crate::CommitDelta>();
        assert_send::<crate::AnonymizeConfig>();
    }

    #[test]
    fn run_control_is_shareable_across_threads() {
        assert_send::<crate::RunControl>();
        assert_sync::<crate::RunControl>();
    }
}
