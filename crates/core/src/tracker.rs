//! Streaming argmin over candidate moves with **order-independent** seeded
//! tie-breaking.
//!
//! Algorithm 4 (lines 14–18) breaks exact ties — same `maxLO` *and* same
//! `N(maxLO)` — uniformly at random with a reservoir counter. A reservoir is
//! inherently scan-order dependent: it draws from the RNG once per tie *in
//! the order ties are encountered*, so two scans of the same candidates in
//! different orders (or the same scan split across threads) select
//! differently and consume different amounts of the random stream. That
//! latent order bias was harmless while the scan was sequential; it becomes
//! a correctness bug the moment the scan is sharded across workers.
//!
//! [`BestTracker`] therefore resolves ties by *seeded priority* instead:
//! every candidate combo gets a pseudo-random 64-bit key derived by
//! [`TieBreak`] from the per-step nonce and the combo's **global candidate
//! indices**, and the winner is the minimum under the total order
//!
//! ```text
//! (maxLO, N(maxLO), combo size, key, indices)   — lexicographic
//! ```
//!
//! Every component is a pure function of the candidate and the step nonce,
//! so the argmin over a candidate set does not depend on the order offers
//! arrive — offering shards separately and [`BestTracker::merge`]-ing the
//! per-shard winners yields bit-for-bit the sequential scan's choice, for
//! any shard count and any shard boundaries. Among `k` exactly-tied
//! same-size combos, each wins with probability `1/k` (the keys are i.i.d.
//! uniform in the idealized-hash model), preserving Algorithm 4's uniform
//! tie-break; the `indices` component only breaks hash collisions (for
//! size-1 combos collisions are impossible — the key map is injective per
//! nonce), falling back to global candidate index order. The size component
//! keeps the historical guarantee that a larger combo never displaces an
//! equally good smaller one.

use crate::lo::LoAssessment;
use lopacity_graph::Edge;
use rand::rngs::StdRng;
use rand::RngExt;

/// Per-step tie-breaking context: a nonce drawn **once** per greedy step
/// from the run's seeded RNG, regardless of candidate count or thread
/// count — so the RNG stream's evolution is identical for sequential and
/// parallel scans.
pub(crate) struct TieBreak {
    nonce: u64,
}

impl TieBreak {
    /// Draws the step nonce (exactly one `u64`) from the run RNG.
    pub(crate) fn from_rng(rng: &mut StdRng) -> Self {
        TieBreak { nonce: rng.next_u64() }
    }

    #[cfg(test)]
    pub(crate) fn with_nonce(nonce: u64) -> Self {
        TieBreak { nonce }
    }

    /// The priority key of a combo, from its global candidate indices.
    /// Injective in the final index for a fixed prefix (SplitMix64's
    /// finalizer is a bijection), uniform across nonces.
    pub(crate) fn key(&self, indices: &[usize]) -> u64 {
        let mut h = self.nonce;
        for &i in indices {
            h = splitmix(h ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        h
    }
}

/// SplitMix64's finalizer: a bijective 64-bit mixer.
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The incumbent best move of a (possibly sharded) scan.
struct BestEntry {
    combo: Vec<Edge>,
    indices: Vec<usize>,
    a: LoAssessment,
    key: u64,
}

impl BestEntry {
    /// `true` when `(a, len, key, indices)` precedes the incumbent in the
    /// tracker's total order.
    fn is_displaced_by(&self, a: &LoAssessment, len: usize, key: u64, indices: &[usize]) -> bool {
        a.cmp_value(&self.a)
            .then_with(|| a.n_at_max().cmp(&self.a.n_at_max()))
            .then_with(|| len.cmp(&self.combo.len()))
            .then_with(|| key.cmp(&self.key))
            .then_with(|| indices.cmp(&self.indices))
            .is_lt()
    }
}

/// Streaming argmin over candidate combos under the order-independent
/// total order documented in the [module docs](self).
pub(crate) struct BestTracker {
    best: Option<BestEntry>,
}

impl BestTracker {
    pub(crate) fn new() -> Self {
        BestTracker { best: None }
    }

    /// Offers one combo: `indices` are the combo's global candidate
    /// indices (shard offset already applied), `combo` the edges.
    pub(crate) fn offer(
        &mut self,
        indices: &[usize],
        combo: &[Edge],
        a: LoAssessment,
        tb: &TieBreak,
    ) {
        debug_assert_eq!(indices.len(), combo.len());
        let key = tb.key(indices);
        let displaced = match &self.best {
            None => true,
            Some(best) => best.is_displaced_by(&a, combo.len(), key, indices),
        };
        if displaced {
            self.best = Some(BestEntry {
                combo: combo.to_vec(),
                indices: indices.to_vec(),
                a,
                key,
            });
        }
    }

    /// Folds another tracker's incumbent in. Because the underlying order
    /// is total and offer-order independent, merging per-shard trackers in
    /// any order equals one tracker fed every offer.
    pub(crate) fn merge(&mut self, other: BestTracker) {
        let Some(entry) = other.best else { return };
        let displaced = match &self.best {
            None => true,
            Some(best) => {
                best.is_displaced_by(&entry.a, entry.combo.len(), entry.key, &entry.indices)
            }
        };
        if displaced {
            self.best = Some(entry);
        }
    }

    /// The winning combo and its assessment, if any offer arrived.
    pub(crate) fn take(self) -> Option<(Vec<Edge>, LoAssessment)> {
        self.best.map(|entry| (entry.combo, entry.a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distinct assessments/combos for tie tests: all candidates share the
    /// same (value, N) so only the seeded priority decides.
    fn tied_assessment() -> LoAssessment {
        LoAssessment::new(1, 2, 3)
    }

    fn edge(i: usize) -> Edge {
        Edge::new(0, i as u32 + 1)
    }

    /// Sequential offers in any permutation pick the same winner.
    #[test]
    fn tie_winner_is_offer_order_independent() {
        let tb = TieBreak::with_nonce(0xDEAD_BEEF);
        let orders: [[usize; 4]; 4] =
            [[0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]];
        let winners: Vec<Edge> = orders
            .iter()
            .map(|order| {
                let mut t = BestTracker::new();
                for &i in order {
                    t.offer(&[i], &[edge(i)], tied_assessment(), &tb);
                }
                t.take().unwrap().0[0]
            })
            .collect();
        assert!(winners.windows(2).all(|w| w[0] == w[1]), "winners {winners:?}");
    }

    /// Merging per-shard trackers equals one tracker fed every offer, for
    /// every split point.
    #[test]
    fn merged_shards_equal_sequential_scan() {
        let tb = TieBreak::with_nonce(42);
        // Mix of ties and strict improvements.
        let assessments: Vec<LoAssessment> = vec![
            LoAssessment::new(2, 3, 1),
            LoAssessment::new(1, 2, 2),
            LoAssessment::new(1, 2, 2),
            LoAssessment::new(3, 4, 1),
            LoAssessment::new(1, 2, 2),
            LoAssessment::new(1, 2, 5),
        ];
        let mut sequential = BestTracker::new();
        for (i, a) in assessments.iter().enumerate() {
            sequential.offer(&[i], &[edge(i)], *a, &tb);
        }
        let expected = sequential.take().unwrap();
        for split in 0..=assessments.len() {
            let (left, right) = assessments.split_at(split);
            let mut shard_a = BestTracker::new();
            for (i, a) in left.iter().enumerate() {
                shard_a.offer(&[i], &[edge(i)], *a, &tb);
            }
            let mut shard_b = BestTracker::new();
            for (k, a) in right.iter().enumerate() {
                shard_b.offer(&[split + k], &[edge(split + k)], *a, &tb);
            }
            // Merge in both directions: the order must not matter.
            let mut ab = BestTracker::new();
            ab.merge(shard_a);
            ab.merge(shard_b);
            let got = ab.take().unwrap();
            assert_eq!(got.0, expected.0, "split {split}");
            assert_eq!(got.1.ratio(), expected.1.ratio(), "split {split}");
        }
    }

    /// A better assessment always displaces, regardless of keys.
    #[test]
    fn strictly_better_beats_any_priority() {
        let tb = TieBreak::with_nonce(7);
        let mut t = BestTracker::new();
        t.offer(&[0], &[edge(0)], LoAssessment::new(1, 2, 1), &tb);
        t.offer(&[1], &[edge(1)], LoAssessment::new(1, 3, 9), &tb);
        let (combo, a) = t.take().unwrap();
        assert_eq!(combo, vec![edge(1)]);
        assert_eq!(a.ratio(), (1, 3));
        // Same value, smaller multiplicity also wins.
        let mut t = BestTracker::new();
        t.offer(&[0], &[edge(0)], LoAssessment::new(1, 2, 5), &tb);
        t.offer(&[1], &[edge(1)], LoAssessment::new(1, 2, 2), &tb);
        assert_eq!(t.take().unwrap().0, vec![edge(1)]);
    }

    /// A larger combo never displaces an equally good smaller one, in
    /// either offer order.
    #[test]
    fn larger_combo_never_displaces_equal_smaller() {
        let tb = TieBreak::with_nonce(3);
        for flip in [false, true] {
            let mut t = BestTracker::new();
            let single: (&[usize], &[Edge]) = (&[5], &[edge(5)]);
            let pair_edges = [edge(0), edge(1)];
            let pair: (&[usize], &[Edge]) = (&[0, 1], &pair_edges);
            let offers = if flip { [pair, single] } else { [single, pair] };
            for (indices, combo) in offers {
                t.offer(indices, combo, tied_assessment(), &tb);
            }
            assert_eq!(t.take().unwrap().0, vec![edge(5)], "flip={flip}");
        }
    }

    /// The seeded priority is uniform over exactly-tied candidates: over
    /// many nonces, each of the 4 tied candidates wins about 1/4 of the
    /// time. (Loose 3-sigma-ish bounds; the point is "no candidate is
    /// systematically favored by scan position" — the old reservoir got
    /// this right only for a fixed scan order.)
    #[test]
    fn tie_probabilities_are_uniform_across_nonces() {
        const ROUNDS: usize = 4000;
        let mut wins = [0usize; 4];
        for nonce in 0..ROUNDS as u64 {
            let tb = TieBreak::with_nonce(splitmix(nonce));
            let mut t = BestTracker::new();
            for i in 0..4 {
                t.offer(&[i], &[edge(i)], tied_assessment(), &tb);
            }
            let winner = t.take().unwrap().0[0];
            let slot = (0..4).find(|&i| edge(i) == winner).unwrap();
            wins[slot] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            let p = w as f64 / ROUNDS as f64;
            assert!((p - 0.25).abs() < 0.035, "candidate {i} won {p:.3} of ties: {wins:?}");
        }
    }

    /// Global-candidate-index order is the documented final fallback; with
    /// equal keys (forced by offering the same index twice) the entry is
    /// not displaced — i.e. the first-by-index offer is stable.
    #[test]
    fn identical_offer_does_not_displace() {
        let tb = TieBreak::with_nonce(11);
        let mut t = BestTracker::new();
        t.offer(&[2], &[edge(2)], tied_assessment(), &tb);
        t.offer(&[2], &[edge(2)], tied_assessment(), &tb);
        assert_eq!(t.take().unwrap().0, vec![edge(2)]);
    }

    /// Size-1 keys are injective per nonce, so the indices fallback can
    /// never be reached by distinct candidates.
    #[test]
    fn size_one_keys_never_collide() {
        let tb = TieBreak::with_nonce(0x5EED);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000usize {
            assert!(seen.insert(tb.key(&[i])), "key collision at index {i}");
        }
    }
}
