//! The [`Anonymizer`] session: one evaluator build, many runs.
//!
//! The free functions of [`crate::removal`] / [`crate::removal_insertion`]
//! rebuild the full APSP distance matrix and per-type counters on every
//! call — pure waste for the paper's experimental protocol (Figures 8–12),
//! which sweeps θ and L over the *same* graph. A session builds the
//! [`OpacityEvaluator`] once and amortizes it:
//!
//! ```
//! use lopacity::{Anonymizer, AnonymizeConfig, Removal, TypeSpec};
//! use lopacity_graph::Graph;
//!
//! let g = Graph::from_edges(7, [
//!     (0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6),
//! ]).unwrap();
//! let spec = TypeSpec::DegreePairs;
//! let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
//! let outcome = session.run(Removal);
//! assert!(outcome.achieved);
//! // A second run (same L) reuses the cached APSP build.
//! let again = session.run(Removal);
//! assert_eq!(outcome.removed, again.removed);
//! ```
//!
//! # Sweeps
//!
//! [`Anonymizer::sweep`] drives one strategy across several θ values in
//! **descending** order. In the default [`SweepMode::Resume`] each θ picks
//! up from the previous θ's edited graph, evaluator state, RNG, and
//! strategy bookkeeping. Because the greedy trajectories of
//! [`crate::strategy::Removal`] and [`crate::strategy::RemovalInsertion`]
//! do not depend on θ (θ only decides when to *stop*), every resumed
//! segment's cumulative outcome is **bit-for-bit** what a standalone run at
//! that θ would produce — at a fraction of the trials (asserted in
//! `tests/tests/session_api.rs`). [`SweepMode::Independent`] opts out:
//! every θ restarts from the original graph (still sharing the initial
//! evaluator build), reproducing N standalone runs exactly.
//!
//! The θ-independence caveat: [`crate::strategy::ExactMinRemovals`] *does*
//! condition its search on θ, so under `Resume` each segment is minimal
//! only **given** the previous segments' edits; use `Independent` when every
//! θ must be globally minimal.

use crate::config::AnonymizeConfig;
use crate::control::RunControl;
use crate::evaluator::OpacityEvaluator;
use crate::forks::ForkSet;
use crate::lo::LoAssessment;
use crate::progress::{NoOpObserver, ProgressObserver, RunInfo, StepEvent};
use crate::removal::choose_move;
use crate::result::AnonymizationOutcome;
use crate::strategy::{MoveKind, Strategy};
use crate::types::TypeSpec;
use lopacity_apsp::ApspEngine;
use lopacity_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How [`Anonymizer::sweep`] treats consecutive θ values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Each θ resumes from the previous θ's edited graph, evaluator, RNG,
    /// and strategy state. For θ-independent strategies (the greedy
    /// heuristics) every segment equals a standalone run at its θ,
    /// bit-for-bit, while trials are paid only once. Default.
    #[default]
    Resume,
    /// Each θ restarts from the original graph with a freshly seeded RNG
    /// and fresh strategy state — N independent runs that still share the
    /// session's initial evaluator build (cloned, not recomputed).
    Independent,
}

/// One θ cell of an [`Anonymizer::sweep`].
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The θ this cell was driven toward.
    pub theta: f64,
    /// The run outcome as of reaching this θ. Under [`SweepMode::Resume`]
    /// the counters and edit lists are cumulative from the sweep's start —
    /// exactly what a standalone run at this θ reports.
    pub outcome: AnonymizationOutcome,
    /// Candidate evaluations spent on this θ alone (for `Independent`
    /// this equals `outcome.trials`).
    pub new_trials: u64,
    /// Edge edits committed for this θ alone.
    pub new_edits: usize,
    /// Wall-clock seconds spent on this θ alone (segment execution; the
    /// session's one-time evaluator build is not attributed to any θ).
    pub secs: f64,
}

/// One L cell of an [`Anonymizer::l_sweep`].
#[derive(Debug, Clone)]
pub struct LSweepRun {
    /// The path-length threshold this cell ran at.
    pub l: u8,
    /// The standalone outcome of the run at this L (each L restarts from
    /// the original graph with a fresh `config.seed` RNG).
    pub outcome: AnonymizationOutcome,
    /// Wall-clock seconds spent on this L (evaluator build included when
    /// this L's build was not already cached).
    pub secs: f64,
}

/// Mutable run counters shared by every strategy execution (also the
/// repair bookkeeping of [`crate::churn::ChurnSession`], which snapshots
/// them into a `RepairPatch` instead of an outcome).
#[derive(Debug, Default)]
pub(crate) struct RunTotals {
    pub(crate) steps: usize,
    pub(crate) trials: u64,
    pub(crate) removed: Vec<Edge>,
    pub(crate) inserted: Vec<Edge>,
    /// Set by [`RunContext::declare_achieved`]: a strategy pursuing an
    /// objective other than `maxLO <= θ` (the `crates/models` privacy
    /// models) overrides the outcome's `achieved` verdict with its own
    /// certifier's. `None` keeps the L-opacity default.
    pub(crate) achieved_override: Option<bool>,
}

impl RunTotals {
    /// Snapshots the counters into an outcome around the given graph.
    fn outcome(
        &self,
        graph: Graph,
        a: LoAssessment,
        theta: f64,
        fork_clones: u64,
    ) -> AnonymizationOutcome {
        AnonymizationOutcome {
            graph,
            removed: self.removed.clone(),
            inserted: self.inserted.clone(),
            steps: self.steps,
            trials: self.trials,
            final_lo: a.as_f64(),
            final_n_at_max: a.n_at_max(),
            achieved: self.achieved_override.unwrap_or_else(|| a.satisfies(theta)),
            fork_clones,
        }
    }
}

/// Everything a [`Strategy`] may touch while executing: the working
/// evaluator, the run configuration (with the θ of the current run or
/// sweep segment), the seeded RNG, the observer, and the shared counters.
///
/// The high-level methods ([`RunContext::select`], [`RunContext::commit`],
/// [`RunContext::step_committed`]) keep the edit lists, trial clock, and
/// observer stream consistent; strategies that need raw evaluator access
/// ([`RunContext::evaluator_mut`]) must route every *net* mutation through
/// [`RunContext::commit`] so the outcome's edit lists stay truthful.
pub struct RunContext<'s> {
    ev: &'s mut OpacityEvaluator,
    forks: &'s mut ForkSet,
    config: &'s AnonymizeConfig,
    rng: &'s mut StdRng,
    observer: &'s mut dyn ProgressObserver,
    totals: &'s mut RunTotals,
    control: Option<&'s RunControl>,
}

impl RunContext<'_> {
    /// The configuration of the current run (θ already set).
    pub fn config(&self) -> &AnonymizeConfig {
        self.config
    }

    /// Read access to the working evaluator.
    pub fn evaluator(&self) -> &OpacityEvaluator {
        self.ev
    }

    /// Raw mutable access to the working evaluator, for strategies that
    /// search with trial/apply/undo (e.g. the exact solver).
    ///
    /// **Contract:** every apply made through this handle must be undone
    /// before the strategy next calls [`RunContext::select`] or returns —
    /// lasting changes go through [`RunContext::commit`] *instead* (commit
    /// performs the apply itself, keeps the outcome's edit lists truthful,
    /// and replays the change onto the persistent scan forks). A net
    /// mutation left applied here would silently desync the forks — and
    /// with them the parallel scan; debug builds catch the violation at
    /// the next sharded scan via a revision check.
    pub fn evaluator_mut(&mut self) -> &mut OpacityEvaluator {
        self.ev
    }

    /// `(maxLO, N)` of the working graph.
    pub fn assessment(&self) -> LoAssessment {
        self.ev.assessment()
    }

    /// Whether the working graph already satisfies the run's θ.
    pub fn achieved(&self) -> bool {
        self.ev.assessment().satisfies(self.config.theta)
    }

    /// Whether the step, trial, or edit budget is spent (checked by the
    /// greedy driver at the top of every step, like Algorithms 4/5 do).
    pub fn out_of_budget(&self) -> bool {
        self.config.max_steps.is_some_and(|cap| self.totals.steps >= cap)
            || self.config.max_trials.is_some_and(|cap| self.totals.trials >= cap)
            || self.config.max_edits.is_some_and(|cap| self.edits() >= cap)
    }

    /// Whether the attached [`RunControl`] (if any) asks this run to stop:
    /// cancellation, or a dynamic trial/step cap reached. Unlike
    /// [`RunContext::out_of_budget`]'s static config budgets — which are
    /// enforced deterministically by prefix-truncating the candidate scan —
    /// this is a purely **cooperative** signal, polled by
    /// [`crate::strategy::drive_greedy`] at every phase boundary, so a run
    /// stops within one scan phase of the request and every committed step
    /// remains a bit-for-bit prefix of the uninterrupted trajectory.
    pub fn stop_requested(&self) -> bool {
        self.control.is_some_and(|c| c.should_stop(self.totals.trials, self.totals.steps))
    }

    /// Whether the run should stop for *any* reason — static budgets or a
    /// cooperative stop request. The greedy driver and the exact strategy
    /// check this at their step/level boundaries.
    pub fn interrupted(&self) -> bool {
        self.out_of_budget() || self.stop_requested()
    }

    /// Committed greedy steps so far (cumulative across resumed segments).
    pub fn steps(&self) -> usize {
        self.totals.steps
    }

    /// Candidate evaluations so far (cumulative across resumed segments).
    pub fn trials(&self) -> u64 {
        self.totals.trials
    }

    /// Net edge edits committed so far (removals + insertions after
    /// cancellation) — the quantity [`AnonymizeConfig::max_edits`] caps.
    pub fn edits(&self) -> usize {
        self.totals.removed.len() + self.totals.inserted.len()
    }

    /// Overrides the outcome's `achieved` verdict. The session's default
    /// verdict is the L-opacity one (`maxLO <= θ`); strategies that pursue
    /// a different privacy objective — the `crates/models` plug-ins —
    /// declare their own certifier's verdict here before returning, so
    /// `AnonymizationOutcome::achieved` is truthful for every model. The
    /// last declaration of a run (or resumed sweep) wins.
    pub fn declare_achieved(&mut self, achieved: bool) {
        self.totals.achieved_override = Some(achieved);
    }

    /// Adds search work performed outside [`RunContext::select`] (e.g.
    /// branch-and-bound nodes) to the trial clock.
    pub fn add_trials(&mut self, n: u64) {
        self.totals.trials += n;
    }

    /// Scans `candidates` for the best move of `kind` under the config's
    /// look-ahead policy and parallelism, advancing the trial clock and the
    /// run RNG (one tie-break nonce per call on non-empty candidates).
    /// Returns the chosen combo and its assessment without committing it,
    /// or `None` when `candidates` is empty.
    pub fn select(
        &mut self,
        kind: MoveKind,
        candidates: &[Edge],
    ) -> Option<(Vec<Edge>, LoAssessment)> {
        let current = self.ev.assessment();
        choose_move(
            self.ev,
            self.forks,
            candidates,
            current,
            self.config,
            kind,
            self.rng,
            &mut self.totals.trials,
        )
    }

    /// Applies a combo permanently and records it in the edit lists. Each
    /// applied move's forward delta is replayed onto the run's persistent
    /// scan forks (O(changed cells) per fork), so the next sharded scan
    /// needs no `O(|V|²)` re-clone.
    ///
    /// Edit lists are kept relative to the run's *start* graph: committing
    /// a move that reverses an earlier committed edit of the same run
    /// cancels that entry instead of double-booking both directions. The
    /// built-in greedy strategies never revisit an edited edge (Algorithm
    /// 5's `E_D`/`E_A` sets exist precisely to forbid it), so their edit
    /// lists are untouched by this rule; strategies that legitimately
    /// re-edit — GADES' degree-preserving swaps can swap an edge back —
    /// get symmetric-difference lists, which is what
    /// [`AnonymizationOutcome::distortion`] assumes.
    pub fn commit(&mut self, kind: MoveKind, combo: &[Edge]) {
        for &e in combo {
            let token = match kind {
                MoveKind::Remove => {
                    if let Some(pos) = self.totals.inserted.iter().position(|&x| x == e) {
                        self.totals.inserted.swap_remove(pos); // cancels an insertion
                    } else {
                        self.totals.removed.push(e);
                    }
                    self.ev.apply_remove(e)
                }
                MoveKind::Insert => {
                    if let Some(pos) = self.totals.removed.iter().position(|&x| x == e) {
                        self.totals.removed.swap_remove(pos); // restores a removal
                    } else {
                        self.totals.inserted.push(e);
                    }
                    self.ev.apply_insert(e)
                }
            };
            if self.forks.warm() {
                let delta = self.ev.commit_delta(&token);
                self.forks.replay(&delta);
            }
        }
    }

    /// Counts one completed greedy step and emits the observer event.
    /// When the attached [`RunControl`] has checkpoint capture armed and
    /// the cadence is due, a [`crate::RunCheckpoint`] is published into
    /// the control *before* the observer event fires — so an observer
    /// that persists checkpoints (the daemon's journal) sees the snapshot
    /// for the step it is being told about.
    pub fn step_committed(&mut self) {
        self.totals.steps += 1;
        if let Some(control) = self.control {
            if control.checkpoint_due(self.totals.steps) {
                control.store_checkpoint(crate::RunCheckpoint {
                    steps: self.totals.steps,
                    trials: self.totals.trials,
                    rng_state: self.rng.state(),
                    removed: self.totals.removed.clone(),
                    inserted: self.totals.inserted.clone(),
                });
            }
        }
        let a = self.ev.assessment();
        let event = StepEvent {
            theta: self.config.theta,
            step: self.totals.steps,
            max_lo: a.as_f64(),
            n_at_max: a.n_at_max(),
            trials: self.totals.trials,
            edits: self.totals.removed.len() + self.totals.inserted.len(),
            removed: self.totals.removed.len(),
            inserted: self.totals.inserted.len(),
            fork_clones: self.forks.clones(),
        };
        self.observer.on_step(&event);
    }
}

/// One cached evaluator build, keyed by `(l, engine, store)`.
struct Prepared {
    l: u8,
    engine: ApspEngine,
    store: lopacity_apsp::StoreBackend,
    ev: OpacityEvaluator,
}

impl Prepared {
    fn matches(&self, l: u8, engine: ApspEngine, store: lopacity_apsp::StoreBackend) -> bool {
        self.l == l && self.engine == engine && self.store == store
    }
}

/// An anonymization session over one graph and type spec.
///
/// Construction is cheap; the expensive [`OpacityEvaluator`] build (full
/// truncated APSP + per-type counters) happens lazily on the first
/// [`Anonymizer::run`] / [`Anonymizer::sweep`] and is cached across calls
/// until [`AnonymizeConfig::l`] or [`AnonymizeConfig::engine`] changes.
/// See the [module docs](self) for the full tour.
pub struct Anonymizer<'a> {
    graph: &'a Graph,
    spec: &'a TypeSpec,
    config: AnonymizeConfig,
    sweep_mode: SweepMode,
    observer: Option<&'a mut dyn ProgressObserver>,
    /// Every build this session has paid for, keyed by `(l, engine,
    /// store)`. Revisiting a key — an [`Anonymizer::l_sweep`] passing over
    /// the same L values twice, or a comparison harness alternating
    /// between models at different L — reuses the entry instead of
    /// rebuilding. The set of distinct keys a session touches is small
    /// (L is a u8 and real sweeps use a handful of values), so no
    /// eviction is needed.
    cache: Vec<Prepared>,
    control: Option<RunControl>,
    builds: u64,
}

impl<'a> Anonymizer<'a> {
    /// Opens a session on `graph` under `spec`. The configuration defaults
    /// to `AnonymizeConfig::new(1, 0.5)`; set the real one with
    /// [`Anonymizer::config`].
    pub fn new(graph: &'a Graph, spec: &'a TypeSpec) -> Self {
        Anonymizer {
            graph,
            spec,
            config: AnonymizeConfig::new(1, 0.5),
            sweep_mode: SweepMode::default(),
            observer: None,
            cache: Vec::new(),
            control: None,
            builds: 0,
        }
    }

    /// Sets the run configuration (builder form).
    pub fn config(mut self, config: AnonymizeConfig) -> Self {
        self.set_config(config);
        self
    }

    /// Sets the run configuration in place. Changing `l`, `engine`, or
    /// the store backend selects (or lazily creates) a different cached
    /// evaluator build; everything else (θ, seed, look-ahead, budgets,
    /// parallelism) reuses the current one. Builds are never discarded by
    /// reconfiguration, so flipping back to an earlier `(l, engine,
    /// store)` is free.
    pub fn set_config(&mut self, config: AnonymizeConfig) {
        self.config = config;
    }

    /// The current configuration.
    pub fn current_config(&self) -> &AnonymizeConfig {
        &self.config
    }

    /// Attaches a progress observer (builder form). One observer serves
    /// every subsequent run and sweep of the session.
    pub fn observer(mut self, observer: &'a mut dyn ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a cooperative interruption handle (builder form). Keep a
    /// clone on the controlling side: [`RunControl::cancel`] and the
    /// dynamic budget setters take effect at the next phase boundary of
    /// any subsequent run or sweep segment. An inert control changes
    /// nothing.
    pub fn control(mut self, control: RunControl) -> Self {
        self.set_control(Some(control));
        self
    }

    /// Sets or clears the interruption handle in place.
    pub fn set_control(&mut self, control: Option<RunControl>) {
        self.control = control;
    }

    /// Sets the sweep mode (builder form); see [`SweepMode`].
    pub fn sweep_mode(mut self, mode: SweepMode) -> Self {
        self.set_sweep_mode(mode);
        self
    }

    /// Sets the sweep mode in place (never invalidates the cached build).
    pub fn set_sweep_mode(&mut self, mode: SweepMode) {
        self.sweep_mode = mode;
    }

    /// The session's graph (as provided; runs never mutate it).
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The session's type spec.
    pub fn spec(&self) -> &'a TypeSpec {
        self.spec
    }

    /// `(maxLO, N)` of the original graph — the privacy risk a run starts
    /// from. Builds (and caches) the evaluator if needed.
    pub fn initial_assessment(&mut self) -> LoAssessment {
        self.prepared().assessment()
    }

    /// Read access to the cached pristine evaluator (building it if
    /// necessary) — the hook for tooling and benches that need to inspect
    /// the prepared state (distance-store backend, footprint, within-L
    /// density) without running a strategy.
    pub fn evaluator(&mut self) -> &OpacityEvaluator {
        self.prepared()
    }

    /// The cached pristine evaluator, (re)built when `(l, engine, store)`
    /// changed. This is where [`AnonymizeConfig::store`]'s adaptive
    /// backend choice lands: `Auto` samples the graph's within-L density
    /// and picks dense or sparse per
    /// [`lopacity_apsp::DistStore::build`].
    ///
    /// The build shards its truncated-BFS APSP over
    /// [`AnonymizeConfig::parallelism`] — that knob is deliberately *not*
    /// part of the cache key, because the sharded build is identical to
    /// the sequential one for every worker count (see
    /// [`lopacity_apsp::ApspEngine::compute_with`]).
    fn prepared(&mut self) -> &OpacityEvaluator {
        let (l, engine, store) = (self.config.l, self.config.engine, self.config.store);
        let hit = self.cache.iter().position(|p| p.matches(l, engine, store));
        let index = match hit {
            Some(index) => index,
            None => {
                let ev = OpacityEvaluator::with_options(
                    self.graph.clone(),
                    self.spec,
                    l,
                    engine,
                    self.config.parallelism,
                    store,
                );
                self.builds += 1;
                self.cache.push(Prepared { l, engine, store, ev });
                self.cache.len() - 1
            }
        };
        let prepared = &mut self.cache[index];
        // The knob also gates the evaluator's *runtime* per-commit
        // sharding, so a reused build must pick up the current config —
        // an evaluator built under Fixed(8) serving a run reconfigured to
        // Off would otherwise keep spawning threads per commit.
        prepared.ev.set_parallelism(self.config.parallelism);
        &prepared.ev
    }

    /// Runs `strategy` once at the configured θ and returns the outcome.
    ///
    /// Each run starts from the *original* graph (a clone of the cached
    /// evaluator) with a fresh `config.seed`-seeded RNG, so repeated runs
    /// are reproducible and independent. The clone is an `O(|V|²)` memcpy —
    /// cheap next to the build it preserves, but pure overhead when the
    /// session will never run again; one-shot callers should prefer
    /// [`Anonymizer::run_once`].
    pub fn run<S: Strategy>(&mut self, strategy: S) -> AnonymizationOutcome {
        let ev = self.prepared().clone();
        self.run_on(ev, strategy)
    }

    /// Like [`Anonymizer::run`], but consumes the session and hands the
    /// cached evaluator build itself to the strategy — no defensive clone,
    /// exactly the cost profile of the historical free functions (which
    /// are thin wrappers over this). Output is identical to `run`.
    pub fn run_once<S: Strategy>(mut self, strategy: S) -> AnonymizationOutcome {
        let ev = self.take_prepared();
        self.run_on(ev, strategy)
    }

    /// Shared tail of `run`/`run_once`: drive `strategy` over `ev`.
    fn run_on<S: Strategy>(
        &mut self,
        mut ev: OpacityEvaluator,
        mut strategy: S,
    ) -> AnonymizationOutcome {
        let config = self.config;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut totals = RunTotals::default();
        let mut forks = ForkSet::new();
        self.execute_segment(&mut ev, &mut forks, &mut rng, &mut totals, &config, &mut strategy);
        let a = ev.assessment();
        let outcome = totals.outcome(ev.into_graph(), a, config.theta, forks.clones());
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.on_run_end(&outcome);
        }
        outcome
    }

    /// Resumes an interrupted run from a [`crate::RunCheckpoint`] — the
    /// crash-recovery half of the determinism contract.
    ///
    /// The pristine cached evaluator is cloned and fast-forwarded by
    /// applying the checkpoint's edit lists (order-free: the evaluator's
    /// logical state is a function of the current graph), the run RNG is
    /// restored from the captured raw state, and the counters resume from
    /// the checkpoint's values — then `strategy` continues exactly where
    /// the interrupted run stopped. For the greedy strategies this
    /// re-traces the uninterrupted run's remaining trajectory bit-for-bit,
    /// so `resume_run(s, ck).graph == run(s).graph` byte-for-byte for any
    /// checkpoint `ck` the same configuration captured (pinned by
    /// `tests/tests/checkpoint_resume.rs`).
    ///
    /// **Contract:** `strategy` must carry any internal state the
    /// checkpoint implies — [`crate::RemovalInsertion`] must be rebuilt
    /// with [`crate::RemovalInsertion::with_forbidden`] over the
    /// checkpoint's edit lists ([`crate::Removal`] is stateless).
    /// [`crate::ExactMinRemovals`] is not resumable (its search tree is
    /// not checkpointed); rerun it from scratch instead — it is equally
    /// deterministic.
    pub fn resume_run<S: Strategy>(
        &mut self,
        strategy: S,
        checkpoint: &crate::RunCheckpoint,
    ) -> AnonymizationOutcome {
        let mut ev = self.prepared().clone();
        for &e in &checkpoint.removed {
            ev.apply_remove(e);
        }
        for &e in &checkpoint.inserted {
            ev.apply_insert(e);
        }
        let config = self.config;
        let mut rng = StdRng::from_state(checkpoint.rng_state);
        let mut totals = RunTotals {
            steps: checkpoint.steps,
            trials: checkpoint.trials,
            removed: checkpoint.removed.clone(),
            inserted: checkpoint.inserted.clone(),
            achieved_override: None,
        };
        let mut forks = ForkSet::new();
        let mut strategy = strategy;
        self.execute_segment(&mut ev, &mut forks, &mut rng, &mut totals, &config, &mut strategy);
        let a = ev.assessment();
        let outcome = totals.outcome(ev.into_graph(), a, config.theta, forks.clones());
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.on_run_end(&outcome);
        }
        outcome
    }

    /// Drives `strategy` across `thetas` (sorted descending internally)
    /// under the session's [`SweepMode`]; returns one [`SweepRun`] per θ in
    /// descending order. See the [module docs](self) for the exact
    /// equivalence guarantees of each mode.
    pub fn sweep<S: Strategy + Clone>(
        &mut self,
        thetas: &[f64],
        strategy: S,
    ) -> Vec<SweepRun> {
        let mut order = thetas.to_vec();
        order.sort_by(|a, b| b.partial_cmp(a).expect("θ values must be comparable"));
        match self.sweep_mode {
            SweepMode::Independent => self.sweep_independent(&order, strategy),
            SweepMode::Resume => self.sweep_resumed(&order, strategy),
        }
    }

    fn sweep_independent<S: Strategy + Clone>(
        &mut self,
        order: &[f64],
        strategy: S,
    ) -> Vec<SweepRun> {
        let saved_theta = self.config.theta;
        self.prepared(); // build outside any per-θ clock
        let runs = order
            .iter()
            .map(|&theta| {
                self.config.theta = theta;
                let start = std::time::Instant::now();
                let outcome = self.run(strategy.clone());
                SweepRun {
                    theta,
                    new_trials: outcome.trials,
                    new_edits: outcome.edits(),
                    secs: start.elapsed().as_secs_f64(),
                    outcome,
                }
            })
            .collect();
        self.config.theta = saved_theta;
        runs
    }

    /// Drives `strategy` across several path-length thresholds L at the
    /// session's configured θ — the L axis of the paper's Figures 10–12,
    /// and the leakage axis of the cross-model comparison harness. Every
    /// L runs independently from the original graph (L changes the
    /// *objective*, so resuming one L's edits into the next would conflate
    /// them), but all runs share the session's keyed build cache: the
    /// first pass pays one evaluator build per distinct L, any repeat
    /// visit — a second sweep, or interleaved `set_config` calls — pays
    /// zero (asserted via [`Anonymizer::builds`] in the session tests).
    /// The session's configured L is restored afterwards.
    pub fn l_sweep<S: Strategy + Clone>(&mut self, ls: &[u8], strategy: S) -> Vec<LSweepRun> {
        let saved_l = self.config.l;
        let runs = ls
            .iter()
            .map(|&l| {
                assert!(l >= 1, "L must be at least 1");
                self.config.l = l;
                let start = std::time::Instant::now();
                let outcome = self.run(strategy.clone());
                LSweepRun { l, outcome, secs: start.elapsed().as_secs_f64() }
            })
            .collect();
        self.config.l = saved_l;
        runs
    }

    fn sweep_resumed<S: Strategy>(&mut self, order: &[f64], mut strategy: S) -> Vec<SweepRun> {
        let base = self.config;
        let mut ev = self.prepared().clone();
        let mut rng = StdRng::seed_from_u64(base.seed);
        let mut totals = RunTotals::default();
        // One fork set across every resumed segment — forks warmed for an
        // early θ keep serving the later ones, exactly like one long run.
        let mut forks = ForkSet::new();
        let mut runs = Vec::with_capacity(order.len());
        for &theta in order {
            let mut config = base;
            config.theta = theta;
            let (trials_before, edits_before) =
                (totals.trials, totals.removed.len() + totals.inserted.len());
            let start = std::time::Instant::now();
            self.execute_segment(
                &mut ev, &mut forks, &mut rng, &mut totals, &config, &mut strategy,
            );
            let secs = start.elapsed().as_secs_f64();
            let a = ev.assessment();
            let outcome = totals.outcome(ev.graph().clone(), a, theta, forks.clones());
            if let Some(observer) = self.observer.as_deref_mut() {
                observer.on_run_end(&outcome);
            }
            runs.push(SweepRun {
                theta,
                new_trials: totals.trials - trials_before,
                new_edits: totals.removed.len() + totals.inserted.len() - edits_before,
                secs,
                outcome,
            });
        }
        runs
    }

    /// Announces the segment to the observer and executes the strategy.
    fn execute_segment<S: Strategy>(
        &mut self,
        ev: &mut OpacityEvaluator,
        forks: &mut ForkSet,
        rng: &mut StdRng,
        totals: &mut RunTotals,
        config: &AnonymizeConfig,
        strategy: &mut S,
    ) {
        let mut noop = NoOpObserver;
        let observer: &mut dyn ProgressObserver = match self.observer.as_deref_mut() {
            Some(observer) => observer,
            None => &mut noop,
        };
        run_segment(ev, forks, rng, totals, config, observer, self.control.as_ref(), strategy);
    }

    /// Hands the cached pristine evaluator build (building it if needed) to
    /// the caller, consuming the cache — the [`crate::churn::ChurnSession`]
    /// entry point, which adopts the build as its long-lived working state.
    pub(crate) fn take_prepared(&mut self) -> OpacityEvaluator {
        self.prepared();
        let (l, engine, store) = (self.config.l, self.config.engine, self.config.store);
        let index = self
            .cache
            .iter()
            .position(|p| p.matches(l, engine, store))
            .expect("prepared() populates the cache");
        self.cache.swap_remove(index).ev
    }

    /// Seeds the session's build cache with an externally held pristine
    /// evaluator, skipping the APSP build entirely. This is the session-
    /// cache entry point for long-running services: a server that has
    /// already paid for a build of `(graph, L, engine, store)` hands a
    /// clone to every later session opened on the same key.
    ///
    /// **Contract:** `ev` must be a pristine (never-mutated) build over
    /// exactly this session's graph and type spec under the current
    /// config's `(l, engine, store)` — normally a clone of another
    /// session's [`Anonymizer::evaluator`]. `l` is checked; the rest is
    /// the caller's cache key.
    ///
    /// # Panics
    /// Panics when `ev.l()` disagrees with the configured L.
    pub fn adopt_prepared(&mut self, ev: OpacityEvaluator) {
        assert_eq!(
            ev.l(),
            self.config.l,
            "adopted evaluator was built for L = {}, config wants L = {}",
            ev.l(),
            self.config.l
        );
        let (l, engine, store) = (self.config.l, self.config.engine, self.config.store);
        self.cache.retain(|p| !p.matches(l, engine, store));
        self.cache.push(Prepared { l, engine, store, ev });
    }

    /// Number of evaluator builds this session has paid for — the cost the
    /// `(l, engine, store)` cache amortizes. An [`Anonymizer::l_sweep`]
    /// over `k` distinct L values costs `k` builds the first time and zero
    /// on any repeat pass.
    pub fn builds(&self) -> u64 {
        self.builds
    }
}

/// Announces the segment to `observer` and drives `strategy` over `ev` —
/// the shared execution engine behind [`Anonymizer`] runs and sweeps and
/// [`crate::churn::ChurnSession`] repairs. Lives here because only this
/// module may assemble a [`RunContext`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_segment<S: Strategy + ?Sized>(
    ev: &mut OpacityEvaluator,
    forks: &mut ForkSet,
    rng: &mut StdRng,
    totals: &mut RunTotals,
    config: &AnonymizeConfig,
    observer: &mut dyn ProgressObserver,
    control: Option<&RunControl>,
    strategy: &mut S,
) {
    let initial = ev.assessment();
    observer.on_run_start(&RunInfo {
        strategy: strategy.name(),
        theta: config.theta,
        l: config.l,
        initial_lo: initial.as_f64(),
        initial_n_at_max: initial.n_at_max(),
        trials_before: totals.trials,
        steps_before: totals.steps,
    });
    let mut ctx = RunContext { ev, forks, config, rng, observer, totals, control };
    strategy.execute(&mut ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{ExactMinRemovals, Removal, RemovalInsertion};

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn run_matches_known_removal_behaviour() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5).with_seed(1));
        let out = session.run(Removal);
        assert!(out.achieved, "{out}");
        assert!(out.inserted.is_empty());
    }

    #[test]
    fn repeated_runs_are_identical_and_share_the_build() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.3).with_seed(11));
        let a = session.run(Removal);
        let b = session.run(Removal);
        assert_eq!(a.removed, b.removed);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn changing_l_rebuilds_the_evaluator() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
        let lo_l1 = session.initial_assessment().as_f64();
        session.set_config(AnonymizeConfig::new(2, 0.5));
        let lo_l2 = session.initial_assessment().as_f64();
        // L = 2 reaches at least as many pairs per type as L = 1.
        assert!(lo_l2 >= lo_l1);
    }

    #[test]
    fn sweep_orders_thetas_descending() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5).with_seed(3));
        let runs = session.sweep(&[0.5, 0.9, 0.7], RemovalInsertion::default());
        let order: Vec<f64> = runs.iter().map(|r| r.theta).collect();
        assert_eq!(order, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn resumed_sweep_counters_are_monotone_and_cumulative() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.4).with_seed(5));
        let runs = session.sweep(&[0.8, 0.6, 0.4], Removal);
        assert!(runs.windows(2).all(|w| w[0].outcome.trials <= w[1].outcome.trials));
        assert!(runs.windows(2).all(|w| w[0].outcome.steps <= w[1].outcome.steps));
        let total_new: u64 = runs.iter().map(|r| r.new_trials).sum();
        assert_eq!(total_new, runs.last().unwrap().outcome.trials);
    }

    /// A reused cached build adopts the *current* config's parallelism:
    /// the knob gates runtime per-commit sharding, so a session
    /// reconfigured from Fixed(8) to Off must stop spawning (and vice
    /// versa) without invalidating the build cache.
    #[test]
    fn cached_evaluator_tracks_parallelism_reconfiguration() {
        use lopacity_util::Parallelism;
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec)
            .config(AnonymizeConfig::new(2, 0.5).with_parallelism(Parallelism::Fixed(8)));
        assert_eq!(session.evaluator().parallelism(), Parallelism::Fixed(8));
        session.set_config(
            AnonymizeConfig::new(2, 0.5).with_parallelism(Parallelism::Off),
        );
        assert_eq!(
            session.evaluator().parallelism(),
            Parallelism::Off,
            "cache reuse must refresh the runtime parallelism budget"
        );
    }

    /// The keyed build cache: alternating between two L values must pay
    /// for exactly two builds no matter how often the session flips, and
    /// a repeated `l_sweep` over the same L values must add zero builds.
    #[test]
    fn build_cache_is_keyed_not_last_value_only() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
        session.initial_assessment();
        session.set_config(AnonymizeConfig::new(2, 0.5));
        session.initial_assessment();
        session.set_config(AnonymizeConfig::new(1, 0.5));
        session.initial_assessment();
        assert_eq!(session.builds(), 2, "flipping back to L = 1 must hit the cache");

        let first = session.l_sweep(&[1, 2, 3], Removal);
        assert_eq!(session.builds(), 3, "sweep adds only the unseen L = 3 build");
        let second = session.l_sweep(&[1, 2, 3], Removal);
        assert_eq!(session.builds(), 3, "a repeat sweep is build-free");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.l, b.l);
            assert_eq!(a.outcome.removed, b.outcome.removed, "L = {} not reproducible", a.l);
        }
    }

    /// `l_sweep` runs each L standalone: outcomes equal per-L `run` calls
    /// and the session's configured L is restored afterwards.
    #[test]
    fn l_sweep_matches_standalone_runs() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5).with_seed(9));
        let sweep = session.l_sweep(&[2, 1], Removal);
        assert_eq!(session.current_config().l, 1, "configured L restored");
        for cell in &sweep {
            session.set_config(AnonymizeConfig::new(cell.l, 0.5).with_seed(9));
            let standalone = session.run(Removal);
            assert_eq!(cell.outcome.removed, standalone.removed, "L = {}", cell.l);
            assert_eq!(cell.outcome.graph, standalone.graph, "L = {}", cell.l);
        }
    }

    /// The edit budget stops a run at the step boundary after the cap is
    /// reached and reports `achieved: false` when θ was not yet met.
    #[test]
    fn max_edits_caps_the_run() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5).with_seed(1));
        let free = session.run(Removal);
        assert!(free.achieved && free.edits() >= 2, "baseline needs >= 2 edits: {free}");

        session.set_config(
            AnonymizeConfig::new(1, 0.5).with_seed(1).with_max_edits(1),
        );
        let capped = session.run(Removal);
        assert!(!capped.achieved);
        assert_eq!(capped.edits(), 1, "la = 1 commits exactly one edit per step");
        assert_eq!(
            capped.removed,
            free.removed[..1],
            "a budgeted run is a prefix of the unbudgeted one"
        );
    }

    /// `declare_achieved` overrides the outcome verdict in both directions.
    #[test]
    fn declared_achievement_overrides_the_theta_verdict() {
        struct Declare(bool);
        impl Strategy for Declare {
            fn name(&self) -> &'static str {
                "declare"
            }
            fn execute(&mut self, ctx: &mut RunContext<'_>) {
                ctx.declare_achieved(self.0);
            }
        }
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        // θ = 1 is trivially satisfied; a strategy declaring failure wins.
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 1.0));
        assert!(!session.run(Declare(false)).achieved);
        // θ = 0 is unmet; a strategy declaring success wins.
        session.set_config(AnonymizeConfig::new(1, 0.0));
        assert!(session.run(Declare(true)).achieved);
        // Without a declaration the θ verdict stands.
        session.set_config(AnonymizeConfig::new(1, 1.0));
        assert!(session.run(Removal).achieved);
    }

    #[test]
    fn exact_strategy_runs_in_a_session() {
        let g = paper_graph();
        let spec = TypeSpec::DegreePairs;
        let mut session =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5).with_seed(1));
        let out = session.run(ExactMinRemovals::default());
        assert!(out.achieved);
        assert_eq!(out.steps, out.removed.len());
        assert!(out.trials > 0, "search nodes must reach the trial clock");
    }
}
