//! Cooperative run interruption: cancellation and dynamic budgets.
//!
//! The static budgets of [`crate::AnonymizeConfig`] (`max_steps`,
//! `max_trials`) are part of the determinism contract: they are fixed
//! before a run starts and enforced by *prefix truncation* of the
//! candidate scan, so a budgeted run is bit-for-bit a prefix-bounded
//! version of the unbudgeted one for every worker count. A long-running
//! service needs the opposite shape — a knob another thread can turn
//! **while the run executes**: cancel this job now, or tighten its trial
//! budget mid-flight. That cannot ride on `AnonymizeConfig` (it is `Copy`
//! and owned by the run) and must not ride on prefix truncation (the cap
//! is not known when the scan starts).
//!
//! A [`RunControl`] is the shared half of that protocol: a cheaply
//! cloneable handle around atomics that the owning thread (a server
//! worker, a signal handler, a watchdog) flips, and that the greedy
//! driver polls **cooperatively** at its deterministic checkpoints — the
//! top of every greedy step and every phase boundary inside a step, plus
//! the deepening levels of the exact strategy. A run therefore stops
//! within one scan phase of the request, never mid-scan:
//!
//! * committed steps are bit-for-bit those of an uninterrupted run (the
//!   interrupted trajectory is a *prefix* — cancellation can never
//!   produce a step an uncancelled run would not have produced);
//! * a dynamic trial budget is compared against the deterministic trial
//!   clock, so for a fixed budget value the stopping point is itself
//!   deterministic — budget-interrupted outcomes are reproducible;
//! * with no control attached (or an untouched one) the driver's
//!   behaviour is unchanged, preserving every existing equivalence
//!   contract.
//!
//! Interrupted runs end like budget-capped ones always have: a valid
//! partial edit list with `achieved: false` (unless θ was reached first).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lopacity_graph::Edge;

/// Sentinel for "no dynamic cap set".
const UNSET: u64 = u64::MAX;

/// A resumable snapshot of a greedy run at a step boundary.
///
/// Captured by the driver when [`RunControl::set_checkpoint_every`] is
/// armed, published through the control's checkpoint slot, and consumed by
/// [`crate::Anonymizer::resume_run`]. The snapshot is *complete* for the
/// greedy strategies: the edited graph is reconstructible from the
/// pristine graph plus the edit lists (edit order does not matter — the
/// evaluator's logical state is a function of the current graph), the
/// anti-oscillation sets of [`crate::RemovalInsertion`] equal the edit
/// lists at every step boundary (the greedy strategies never revisit an
/// edited edge), and the RNG state resumes the tie-break nonce stream
/// exactly. A resumed run therefore re-traces the uninterrupted run's
/// remaining steps bit-for-bit — the property the crash-recovery tests
/// pin.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// Committed greedy steps at capture time.
    pub steps: usize,
    /// Cumulative candidate evaluations at capture time.
    pub trials: u64,
    /// The run RNG's raw state (xoshiro256++, 4 words).
    pub rng_state: [u64; 4],
    /// Edges removed so far, relative to the run's start graph.
    pub removed: Vec<Edge>,
    /// Edges inserted so far, relative to the run's start graph.
    pub inserted: Vec<Edge>,
}

/// A shared, thread-safe interruption handle for one run (or any number of
/// runs that should stop together). Clones share state; `Default` is an
/// inert control that never interrupts.
#[derive(Debug, Clone)]
pub struct RunControl {
    inner: Arc<Inner>,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl::new()
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    max_trials: AtomicU64,
    max_steps: AtomicU64,
    /// Checkpoint cadence in steps; 0 disables capture.
    checkpoint_every: AtomicU64,
    /// The latest captured checkpoint, awaiting a consumer (a daemon
    /// worker journaling it). Overwritten by each newer capture.
    checkpoint: Mutex<Option<RunCheckpoint>>,
    /// Wall-clock deadline; past it every `should_stop` poll answers yes.
    deadline: Mutex<Option<Instant>>,
    /// Latched the first time a `should_stop` poll observed the deadline
    /// passed — lets the owner distinguish "stopped because time ran out"
    /// from an explicit cancel or a counted budget.
    deadline_hit: AtomicBool,
}

impl RunControl {
    /// A fresh control: not cancelled, no dynamic budgets.
    pub fn new() -> Self {
        RunControl {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                max_trials: AtomicU64::new(UNSET),
                max_steps: AtomicU64::new(UNSET),
                checkpoint_every: AtomicU64::new(0),
                checkpoint: Mutex::new(None),
                deadline: Mutex::new(None),
                deadline_hit: AtomicBool::new(false),
            }),
        }
    }

    /// Requests cancellation. Idempotent; takes effect at the run's next
    /// cooperative checkpoint (within one scan phase).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Sets (or clears) the dynamic candidate-evaluation cap. Unlike
    /// [`crate::AnonymizeConfig::max_trials`] this may change while the
    /// run executes; it is compared against the cumulative trial clock at
    /// each checkpoint.
    pub fn set_max_trials(&self, cap: Option<u64>) {
        self.inner.max_trials.store(cap.unwrap_or(UNSET), Ordering::Relaxed);
    }

    /// Sets (or clears) the dynamic greedy-step cap.
    pub fn set_max_steps(&self, cap: Option<u64>) {
        self.inner.max_steps.store(cap.unwrap_or(UNSET), Ordering::Relaxed);
    }

    /// The dynamic trial cap, if set.
    pub fn max_trials(&self) -> Option<u64> {
        match self.inner.max_trials.load(Ordering::Relaxed) {
            UNSET => None,
            cap => Some(cap),
        }
    }

    /// The dynamic step cap, if set.
    pub fn max_steps(&self) -> Option<u64> {
        match self.inner.max_steps.load(Ordering::Relaxed) {
            UNSET => None,
            cap => Some(cap),
        }
    }

    /// Arms (or disarms, with `None`/`Some(0)`) checkpoint capture: the
    /// greedy driver publishes a [`RunCheckpoint`] into this control every
    /// `every` committed steps (step numbers divisible by `every`). The
    /// capture itself is O(edit list) — a clone of the run's edit lists —
    /// and never changes the run's trajectory.
    pub fn set_checkpoint_every(&self, every: Option<u64>) {
        self.inner.checkpoint_every.store(every.unwrap_or(0), Ordering::Relaxed);
    }

    /// Whether a checkpoint should be captured at committed step `steps`.
    pub fn checkpoint_due(&self, steps: usize) -> bool {
        match self.inner.checkpoint_every.load(Ordering::Relaxed) {
            0 => false,
            every => (steps as u64) % every == 0,
        }
    }

    /// Publishes a captured checkpoint (newest wins).
    pub fn store_checkpoint(&self, checkpoint: RunCheckpoint) {
        *self.inner.checkpoint.lock().expect("checkpoint slot") = Some(checkpoint);
    }

    /// Takes the latest unconsumed checkpoint, leaving the slot empty.
    pub fn take_checkpoint(&self) -> Option<RunCheckpoint> {
        self.inner.checkpoint.lock().expect("checkpoint slot").take()
    }

    /// A clone of the latest checkpoint, leaving it in place.
    pub fn latest_checkpoint(&self) -> Option<RunCheckpoint> {
        self.inner.checkpoint.lock().expect("checkpoint slot").clone()
    }

    /// Sets (or clears) a wall-clock deadline. Like cancellation it takes
    /// effect only at the run's cooperative checkpoints, so a
    /// deadline-stopped run's committed trajectory is still a *prefix* of
    /// the uninterrupted run's — the stopping *point* depends on the
    /// clock, but every committed step is one the unlimited run would have
    /// committed. Setting a new deadline re-arms the expiry latch.
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        *self.inner.deadline.lock().expect("deadline slot") = deadline;
        self.inner.deadline_hit.store(false, Ordering::Relaxed);
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        *self.inner.deadline.lock().expect("deadline slot")
    }

    /// Whether a `should_stop` poll has observed the deadline as passed
    /// since it was last (re)set.
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline_hit.load(Ordering::Relaxed)
    }

    /// Checks the wall clock against the deadline, latching expiry.
    fn deadline_reached(&self) -> bool {
        if self.inner.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        let expired = self
            .deadline()
            .is_some_and(|deadline| Instant::now() >= deadline);
        if expired {
            self.inner.deadline_hit.store(true, Ordering::Relaxed);
        }
        expired
    }

    /// Whether a run with the given cumulative counters should stop:
    /// cancelled, a dynamic cap reached, or the wall-clock deadline
    /// passed. The greedy driver calls this at its checkpoints via
    /// [`crate::RunContext`].
    pub fn should_stop(&self, trials: u64, steps: usize) -> bool {
        self.is_cancelled()
            || trials >= self.inner.max_trials.load(Ordering::Relaxed)
            || (steps as u64) >= self.inner.max_steps.load(Ordering::Relaxed)
            || self.deadline_reached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_control_never_stops() {
        let c = RunControl::new();
        assert!(!c.is_cancelled());
        assert!(!c.should_stop(u64::MAX - 1, usize::MAX - 1));
        assert_eq!(c.max_trials(), None);
        assert_eq!(c.max_steps(), None);
    }

    #[test]
    fn default_is_inert() {
        let c = RunControl::default();
        assert!(!c.should_stop(1_000_000, 1_000_000));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let c = RunControl::new();
        let remote = c.clone();
        assert!(!c.should_stop(0, 0));
        remote.cancel();
        assert!(c.is_cancelled());
        assert!(c.should_stop(0, 0));
    }

    #[test]
    fn checkpoint_slot_is_latest_wins_and_shared() {
        let c = RunControl::new();
        assert!(!c.checkpoint_due(1), "capture disarmed by default");
        c.set_checkpoint_every(Some(2));
        assert!(!c.checkpoint_due(1));
        assert!(c.checkpoint_due(2));
        assert!(c.checkpoint_due(4));
        let ck = |steps| RunCheckpoint {
            steps,
            trials: steps as u64 * 10,
            rng_state: [1, 2, 3, 4],
            removed: vec![],
            inserted: vec![],
        };
        let remote = c.clone();
        c.store_checkpoint(ck(2));
        c.store_checkpoint(ck(4));
        assert_eq!(remote.latest_checkpoint().unwrap().steps, 4);
        assert_eq!(remote.take_checkpoint().unwrap().steps, 4, "newest wins");
        assert!(remote.take_checkpoint().is_none(), "take drains the slot");
        c.set_checkpoint_every(None);
        assert!(!c.checkpoint_due(2));
    }

    #[test]
    fn deadline_latches_and_rearms() {
        use std::time::Duration;
        let c = RunControl::new();
        assert!(!c.deadline_expired());
        c.set_deadline(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!c.should_stop(0, 0), "future deadline does not stop");
        assert!(!c.deadline_expired());
        c.set_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert!(c.should_stop(0, 0), "past deadline stops at the next poll");
        assert!(c.deadline_expired(), "expiry latched");
        assert!(!c.is_cancelled(), "deadline is not a cancel");
        c.set_deadline(None);
        assert!(!c.deadline_expired(), "clearing re-arms the latch");
        assert!(!c.should_stop(0, 0));
    }

    #[test]
    fn dynamic_budgets_compare_against_the_clock() {
        let c = RunControl::new();
        c.set_max_trials(Some(100));
        assert!(!c.should_stop(99, 0));
        assert!(c.should_stop(100, 0));
        c.set_max_trials(None);
        assert!(!c.should_stop(100, 0));
        c.set_max_steps(Some(5));
        assert!(!c.should_stop(0, 4));
        assert!(c.should_stop(0, 5));
    }
}
