//! Exact opacity values.
//!
//! Every `LO_G(T)` is a ratio of two integers (pairs within L over all pairs
//! of the type). The greedy heuristics break ties on *exact equality* of
//! opacity values — comparing floats there would make tie-breaking (and
//! therefore the whole run, via the reservoir sampler) platform-dependent.
//! [`LoAssessment`] keeps the maximum as an exact rational.

use std::cmp::Ordering;

/// The two quantities the greedy step minimizes, lexicographically:
/// the maximum opacity `maxLO` (an exact rational) and `N(maxLO)`, the
/// number of types attaining it (Section 5.2's tie-break).
#[derive(Debug, Clone, Copy)]
pub struct LoAssessment {
    /// Numerator of the maximum per-type opacity.
    num: u64,
    /// Denominator of the maximum per-type opacity (0 only for "no types").
    den: u64,
    /// Number of types attaining the maximum.
    n_at_max: usize,
}

impl LoAssessment {
    /// The all-zero assessment (no typed pair within reach).
    pub const ZERO: LoAssessment = LoAssessment { num: 0, den: 1, n_at_max: 0 };

    /// Builds an assessment from an explicit ratio and multiplicity. The
    /// ratio is stored in lowest terms, so equal opacity values always have
    /// identical representations regardless of which type produced them.
    pub fn new(num: u64, den: u64, n_at_max: usize) -> Self {
        assert!(den > 0, "opacity denominator must be positive");
        let g = gcd(num, den);
        LoAssessment { num: num / g, den: den / g, n_at_max }
    }

    /// Scans per-type counts/denominators and returns the exact maximum and
    /// its multiplicity. Types with a zero denominator are skipped.
    pub fn from_counts(counts: &[u64], denoms: &[u64]) -> Self {
        debug_assert_eq!(counts.len(), denoms.len());
        let mut best = LoAssessment::ZERO;
        for (&c, &d) in counts.iter().zip(denoms) {
            if d == 0 {
                continue;
            }
            match cmp_ratio(c, d, best.num, best.den) {
                Ordering::Greater => best = LoAssessment { num: c, den: d, n_at_max: 1 },
                Ordering::Equal => best.n_at_max += 1,
                Ordering::Less => {}
            }
        }
        // A graph with types but none linked: report multiplicity of the
        // zero value as 0 rather than the number of types; the tie-break
        // only matters between equal *positive* maxima, and ZERO starts the
        // scan with multiplicity 0 for the 0/1 value.
        LoAssessment::new(best.num, best.den, best.n_at_max)
    }

    /// The opacity value as a float (display / θ comparison).
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Number of types attaining the maximum — the paper's `N(LO(G'))`.
    pub fn n_at_max(&self) -> usize {
        self.n_at_max
    }

    /// Exact numerator/denominator of the maximum.
    pub fn ratio(&self) -> (u64, u64) {
        (self.num, self.den)
    }

    /// Whether the value satisfies the privacy threshold: `maxLO ≤ θ`
    /// (the loop condition of Algorithms 4 and 5, negated).
    pub fn satisfies(&self, theta: f64) -> bool {
        // num/den <= theta  <=>  num <= theta * den, with a tolerance that
        // forgives float representation of θ values like 0.3.
        (self.num as f64) <= theta * (self.den as f64) + 1e-9
    }

    /// Strictly-better comparison for greedy moves: smaller `maxLO` first,
    /// then smaller `N(maxLO)`.
    pub fn better_than(&self, other: &LoAssessment) -> bool {
        match cmp_ratio(self.num, self.den, other.num, other.den) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => self.n_at_max < other.n_at_max,
        }
    }

    /// Exact equality of both the value and the multiplicity.
    pub fn ties_with(&self, other: &LoAssessment) -> bool {
        cmp_ratio(self.num, self.den, other.num, other.den) == Ordering::Equal
            && self.n_at_max == other.n_at_max
    }

    /// Compares only the opacity values (not the multiplicities).
    pub fn cmp_value(&self, other: &LoAssessment) -> Ordering {
        cmp_ratio(self.num, self.den, other.num, other.den)
    }
}

/// Exact comparison of `a/b` vs `c/d` (b, d > 0) without overflow.
fn cmp_ratio(a: u64, b: u64, c: u64, d: u64) -> Ordering {
    debug_assert!(b > 0 && d > 0);
    (a as u128 * d as u128).cmp(&(c as u128 * b as u128))
}

/// Greatest common divisor (Euclid); `gcd(0, d) = d`.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

impl std::fmt::Display for LoAssessment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} ({:.4}) ×{}", self.num, self.den, self.as_f64(), self.n_at_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_finds_max_and_multiplicity() {
        // LO values: 1/2, 2/3, 4/6 (= 2/3), 0/5 -> max 2/3 with multiplicity 2.
        let counts = [1, 2, 4, 0];
        let denoms = [2, 3, 6, 5];
        let a = LoAssessment::from_counts(&counts, &denoms);
        assert_eq!(a.ratio(), (2, 3));
        assert_eq!(a.n_at_max(), 2);
        assert!((a.as_f64() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_types_are_skipped() {
        let a = LoAssessment::from_counts(&[5, 1], &[0, 2]);
        assert_eq!(a.ratio(), (1, 2));
    }

    #[test]
    fn exact_ties_beat_float_rounding() {
        // 1/3 vs 333333.../10^18 would tie under f64; exact compare must not.
        let a = LoAssessment::new(1, 3, 1);
        let b = LoAssessment::new(333_333_333_333_333_333, 1_000_000_000_000_000_000, 1);
        assert_eq!(a.cmp_value(&b), Ordering::Greater);
    }

    #[test]
    fn better_than_is_lexicographic() {
        let lo_small = LoAssessment::new(1, 4, 9);
        let lo_big = LoAssessment::new(1, 2, 1);
        assert!(lo_small.better_than(&lo_big));
        let fewer_types = LoAssessment::new(1, 2, 1);
        let more_types = LoAssessment::new(2, 4, 3);
        assert!(fewer_types.better_than(&more_types));
        assert!(!more_types.better_than(&fewer_types));
        assert!(!fewer_types.better_than(&fewer_types));
    }

    #[test]
    fn satisfies_uses_inclusive_threshold() {
        let half = LoAssessment::new(1, 2, 1);
        assert!(half.satisfies(0.5));
        assert!(half.satisfies(0.6));
        assert!(!half.satisfies(0.49));
        assert!(LoAssessment::ZERO.satisfies(0.0));
        let third = LoAssessment::new(1, 3, 1);
        assert!(third.satisfies(1.0 / 3.0), "float θ representation must not reject equality");
    }

    #[test]
    fn ties_with_requires_both_components() {
        let a = LoAssessment::new(2, 4, 2);
        let b = LoAssessment::new(1, 2, 2);
        assert!(a.ties_with(&b));
        let c = LoAssessment::new(1, 2, 3);
        assert!(!a.ties_with(&c));
    }

    #[test]
    fn empty_counts_are_zero() {
        let a = LoAssessment::from_counts(&[], &[]);
        assert_eq!(a.as_f64(), 0.0);
        assert!(a.satisfies(0.0));
    }
}
