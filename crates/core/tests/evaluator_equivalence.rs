//! Property tests: the incremental evaluator is indistinguishable from full
//! recomputation, and the heuristics honour their postconditions.

use lopacity::opacity::{count_within_l, opacity_report_against_original};
use lopacity::{
    AnonymizeConfig, Anonymizer, LoAssessment, OpacityEvaluator, Removal, RemovalInsertion,
    TypeSpec, TypeSystem,
};
use lopacity_apsp::ApspEngine;
use lopacity_graph::Graph;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..n * 2).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

fn reference_assessment(g: &Graph, types: &TypeSystem, l: u8) -> LoAssessment {
    let dist = ApspEngine::TruncatedBfs.compute(g, l);
    let counts = count_within_l(&dist, types, l);
    LoAssessment::from_counts(&counts, types.denominators())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trial_remove_equals_full_recompute(g in arb_graph(14), l in 1u8..4) {
        let mut ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, l);
        for e in g.edge_vec() {
            let trial = ev.trial_remove(e);
            let mut h = g.clone();
            h.remove_edge(e.u(), e.v());
            let full = reference_assessment(&h, ev.types(), l);
            prop_assert_eq!(trial.ratio(), full.ratio(), "edge {} L={}", e, l);
            prop_assert_eq!(trial.n_at_max(), full.n_at_max(), "edge {} L={}", e, l);
        }
        ev.verify_consistency().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn trial_insert_equals_full_recompute(g in arb_graph(12), l in 1u8..4) {
        let mut ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, l);
        for e in g.non_edges().collect::<Vec<_>>() {
            let trial = ev.trial_insert(e);
            let mut h = g.clone();
            h.add_edge(e.u(), e.v());
            let full = reference_assessment(&h, ev.types(), l);
            prop_assert_eq!(trial.ratio(), full.ratio(), "edge {} L={}", e, l);
        }
        ev.verify_consistency().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_apply_undo_walk_stays_consistent(
        g in arb_graph(12),
        l in 1u8..4,
        moves in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..12)
    ) {
        let mut ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, l);
        let mut stack = Vec::new();
        for (pick, undo_now) in moves {
            // Alternate removals and insertions of arbitrary valid edges.
            let edges = ev.graph().edge_vec();
            let non_edges: Vec<_> = ev.graph().non_edges().collect();
            if !edges.is_empty() && (non_edges.is_empty() || pick % 2 == 0) {
                let e = edges[pick as usize % edges.len()];
                stack.push(ev.apply_remove(e));
            } else if !non_edges.is_empty() {
                let e = non_edges[pick as usize % non_edges.len()];
                stack.push(ev.apply_insert(e));
            }
            if undo_now {
                if let Some(token) = stack.pop() {
                    ev.undo(token);
                }
            }
        }
        ev.verify_consistency().map_err(TestCaseError::fail)?;
        // Unwind everything: must restore the original graph exactly.
        while let Some(token) = stack.pop() {
            ev.undo(token);
        }
        prop_assert_eq!(ev.graph(), &g);
        ev.verify_consistency().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn removal_postcondition_holds(g in arb_graph(10), theta in 0.2f64..0.9, l in 1u8..3) {
        let config = AnonymizeConfig::new(l, theta).with_seed(7);
        let out = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config).run(Removal);
        // Edge removal can always reach the empty graph, which satisfies
        // any θ; so it must always achieve.
        prop_assert!(out.achieved);
        let report = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, l);
        prop_assert!(
            report.max_lo.satisfies(theta),
            "reported achieved but LO = {} > θ = {}", report.max_lo, theta
        );
        // Removal never inserts.
        prop_assert!(out.inserted.is_empty());
        // The removed edges really came from g.
        for e in &out.removed {
            prop_assert!(g.has_edge(e.u(), e.v()));
            prop_assert!(!out.graph.has_edge(e.u(), e.v()));
        }
    }

    #[test]
    fn removal_insertion_postcondition_holds(g in arb_graph(10), theta in 0.3f64..0.9) {
        let config = AnonymizeConfig::new(1, theta).with_seed(11);
        let out = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(config)
            .run(RemovalInsertion::default());
        let report = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
        if out.achieved {
            prop_assert!(report.max_lo.satisfies(theta));
        }
        // Bookkeeping invariants hold regardless of achievement.
        let removed: std::collections::HashSet<_> = out.removed.iter().copied().collect();
        let inserted: std::collections::HashSet<_> = out.inserted.iter().copied().collect();
        prop_assert!(removed.is_disjoint(&inserted));
        prop_assert_eq!(removed.len(), out.removed.len());
        prop_assert_eq!(inserted.len(), out.inserted.len());
    }

    #[test]
    fn lookahead_never_worsens_the_result(g in arb_graph(9), theta in 0.3f64..0.8) {
        let base = AnonymizeConfig::new(1, theta).with_seed(3);
        // One session, two configurations: the second run reuses the build.
        let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(base);
        let la1 = session.run(Removal);
        session.set_config(base.with_lookahead(2));
        let la2 = session.run(Removal);
        prop_assert!(la1.achieved && la2.achieved);
        // Both must satisfy θ; look-ahead explores at least as much.
        prop_assert!(la2.trials >= la1.trials || la2.edits() <= la1.edits());
    }
}
