//! Property tests: the incremental evaluator is indistinguishable from full
//! recomputation, and the heuristics honour their postconditions.

use lopacity::opacity::{count_within_l, opacity_report_against_original};
use lopacity::{
    AnonymizeConfig, Anonymizer, LoAssessment, OpacityEvaluator, Removal, RemovalInsertion,
    StoreBackend, TypeSpec, TypeSystem,
};
use lopacity_apsp::ApspEngine;
use lopacity_graph::Graph;
use lopacity_util::Parallelism;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..n * 2).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

fn reference_assessment(g: &Graph, types: &TypeSystem, l: u8) -> LoAssessment {
    let dist = ApspEngine::TruncatedBfs.compute(g, l);
    let counts = count_within_l(&dist, types, l);
    LoAssessment::from_counts(&counts, types.denominators())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trial_remove_equals_full_recompute(g in arb_graph(14), l in 1u8..4) {
        let mut ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, l);
        for e in g.edge_vec() {
            let trial = ev.trial_remove(e);
            let mut h = g.clone();
            h.remove_edge(e.u(), e.v());
            let full = reference_assessment(&h, ev.types(), l);
            prop_assert_eq!(trial.ratio(), full.ratio(), "edge {} L={}", e, l);
            prop_assert_eq!(trial.n_at_max(), full.n_at_max(), "edge {} L={}", e, l);
        }
        ev.verify_consistency().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn trial_insert_equals_full_recompute(g in arb_graph(12), l in 1u8..4) {
        let mut ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, l);
        for e in g.non_edges().collect::<Vec<_>>() {
            let trial = ev.trial_insert(e);
            let mut h = g.clone();
            h.add_edge(e.u(), e.v());
            let full = reference_assessment(&h, ev.types(), l);
            prop_assert_eq!(trial.ratio(), full.ratio(), "edge {} L={}", e, l);
        }
        ev.verify_consistency().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_apply_undo_walk_stays_consistent(
        g in arb_graph(12),
        l in 1u8..4,
        moves in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..12)
    ) {
        let mut ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, l);
        let mut stack = Vec::new();
        for (pick, undo_now) in moves {
            // Alternate removals and insertions of arbitrary valid edges.
            let edges = ev.graph().edge_vec();
            let non_edges: Vec<_> = ev.graph().non_edges().collect();
            if !edges.is_empty() && (non_edges.is_empty() || pick % 2 == 0) {
                let e = edges[pick as usize % edges.len()];
                stack.push(ev.apply_remove(e));
            } else if !non_edges.is_empty() {
                let e = non_edges[pick as usize % non_edges.len()];
                stack.push(ev.apply_insert(e));
            }
            if undo_now {
                if let Some(token) = stack.pop() {
                    ev.undo(token);
                }
            }
        }
        ev.verify_consistency().map_err(TestCaseError::fail)?;
        // Unwind everything: must restore the original graph exactly.
        while let Some(token) = stack.pop() {
            ev.undo(token);
        }
        prop_assert_eq!(ev.graph(), &g);
        ev.verify_consistency().map_err(TestCaseError::fail)?;
    }

    /// A sparse-backed evaluator is observationally identical to a
    /// dense-backed one under an arbitrary interleaving of trials,
    /// applies, and undos — every assessment agrees, every
    /// `verify_consistency` passes, and both land back on the original
    /// graph. This drives the sparse store's tombstone/overflow/compaction
    /// machinery through realistic evaluator mutation streams across all
    /// four engines.
    #[test]
    fn sparse_backend_walks_match_dense(
        g in arb_graph(12),
        l in 1u8..4,
        engine_sel in 0usize..4,
        moves in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..14)
    ) {
        let engine = ApspEngine::ALL[engine_sel];
        let mut dense = OpacityEvaluator::with_options(
            g.clone(), &TypeSpec::DegreePairs, l, engine, Parallelism::Off,
            StoreBackend::Dense,
        );
        let mut sparse = OpacityEvaluator::with_options(
            g.clone(), &TypeSpec::DegreePairs, l, engine, Parallelism::Off,
            StoreBackend::Sparse,
        );
        prop_assert_eq!(dense.counts(), sparse.counts(), "initial counts");
        let mut dense_stack = Vec::new();
        let mut sparse_stack = Vec::new();
        for (pick, undo_now) in moves {
            let edges = dense.graph().edge_vec();
            let non_edges: Vec<_> = dense.graph().non_edges().collect();
            if !edges.is_empty() && (non_edges.is_empty() || pick % 2 == 0) {
                let e = edges[pick as usize % edges.len()];
                let td = dense.trial_remove(e);
                let ts = sparse.trial_remove(e);
                prop_assert_eq!(td.ratio(), ts.ratio(), "trial_remove {} diverged", e);
                dense_stack.push(dense.apply_remove(e));
                sparse_stack.push(sparse.apply_remove(e));
            } else if !non_edges.is_empty() {
                let e = non_edges[pick as usize % non_edges.len()];
                let td = dense.trial_insert(e);
                let ts = sparse.trial_insert(e);
                prop_assert_eq!(td.ratio(), ts.ratio(), "trial_insert {} diverged", e);
                dense_stack.push(dense.apply_insert(e));
                sparse_stack.push(sparse.apply_insert(e));
            }
            if undo_now {
                if let Some(token) = dense_stack.pop() {
                    dense.undo(token);
                }
                if let Some(token) = sparse_stack.pop() {
                    sparse.undo(token);
                }
            }
            prop_assert_eq!(dense.counts(), sparse.counts(), "counts diverged");
            prop_assert_eq!(
                dense.assessment().ratio(), sparse.assessment().ratio(),
                "assessments diverged"
            );
            prop_assert_eq!(dense.live_pairs(), sparse.live_pairs());
        }
        sparse.verify_consistency().map_err(TestCaseError::fail)?;
        dense.verify_consistency().map_err(TestCaseError::fail)?;
        while let Some(token) = sparse_stack.pop() {
            sparse.undo(token);
            dense.undo(dense_stack.pop().expect("stacks move in lockstep"));
        }
        prop_assert_eq!(sparse.graph(), &g);
        sparse.verify_consistency().map_err(TestCaseError::fail)?;
    }

    /// Full anonymization runs are bit-for-bit backend-invariant through
    /// the session API (outcome facets, edit lists, published graphs).
    #[test]
    fn session_runs_are_backend_invariant(
        g in arb_graph(10),
        theta in 0.2f64..0.8,
        l in 1u8..3,
        seed in 0u64..1 << 32,
    ) {
        let base = AnonymizeConfig::new(l, theta).with_seed(seed);
        let dense = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(base.with_store(StoreBackend::Dense))
            .run(Removal);
        let sparse = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(base.with_store(StoreBackend::Sparse))
            .run(Removal);
        prop_assert_eq!(&dense.removed, &sparse.removed);
        prop_assert_eq!(&dense.graph, &sparse.graph);
        prop_assert_eq!(dense.trials, sparse.trials);
        prop_assert_eq!(dense.final_lo, sparse.final_lo);
        let ri_dense = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(base.with_store(StoreBackend::Dense))
            .run(RemovalInsertion::default());
        let ri_sparse = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(base.with_store(StoreBackend::Sparse))
            .run(RemovalInsertion::default());
        prop_assert_eq!(&ri_dense.removed, &ri_sparse.removed);
        prop_assert_eq!(&ri_dense.inserted, &ri_sparse.inserted);
        prop_assert_eq!(&ri_dense.graph, &ri_sparse.graph);
        prop_assert_eq!(ri_dense.trials, ri_sparse.trials);
    }

    #[test]
    fn removal_postcondition_holds(g in arb_graph(10), theta in 0.2f64..0.9, l in 1u8..3) {
        let config = AnonymizeConfig::new(l, theta).with_seed(7);
        let out = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config).run(Removal);
        // Edge removal can always reach the empty graph, which satisfies
        // any θ; so it must always achieve.
        prop_assert!(out.achieved);
        let report = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, l);
        prop_assert!(
            report.max_lo.satisfies(theta),
            "reported achieved but LO = {} > θ = {}", report.max_lo, theta
        );
        // Removal never inserts.
        prop_assert!(out.inserted.is_empty());
        // The removed edges really came from g.
        for e in &out.removed {
            prop_assert!(g.has_edge(e.u(), e.v()));
            prop_assert!(!out.graph.has_edge(e.u(), e.v()));
        }
    }

    #[test]
    fn removal_insertion_postcondition_holds(g in arb_graph(10), theta in 0.3f64..0.9) {
        let config = AnonymizeConfig::new(1, theta).with_seed(11);
        let out = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(config)
            .run(RemovalInsertion::default());
        let report = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
        if out.achieved {
            prop_assert!(report.max_lo.satisfies(theta));
        }
        // Bookkeeping invariants hold regardless of achievement.
        let removed: std::collections::HashSet<_> = out.removed.iter().copied().collect();
        let inserted: std::collections::HashSet<_> = out.inserted.iter().copied().collect();
        prop_assert!(removed.is_disjoint(&inserted));
        prop_assert_eq!(removed.len(), out.removed.len());
        prop_assert_eq!(inserted.len(), out.inserted.len());
    }

    #[test]
    fn lookahead_never_worsens_the_result(g in arb_graph(9), theta in 0.3f64..0.8) {
        let base = AnonymizeConfig::new(1, theta).with_seed(3);
        // One session, two configurations: the second run reuses the build.
        let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(base);
        let la1 = session.run(Removal);
        session.set_config(base.with_lookahead(2));
        let la2 = session.run(Removal);
        prop_assert!(la1.achieved && la2.achieved);
        // Both must satisfy θ; look-ahead explores at least as much.
        prop_assert!(la2.trials >= la1.trials || la2.edits() <= la1.edits());
    }
}
