//! Combined utility report for an (original, anonymized) pair.

use crate::clustering::mean_cc_difference;
use crate::distortion::{distortion, edge_edit_counts};
use crate::emd::emd_1d;
use crate::geodesic::geodesic_distribution;
use crate::spectral::spectral_summary;
use crate::stats::GraphStats;
use lopacity_graph::Graph;

/// Every utility metric the paper's evaluation reports (plus the spectral
/// extension), computed in one pass over an original/anonymized pair.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityReport {
    /// Edit-distance ratio of Equation 1 (Figure 6 y-axis).
    pub distortion: f64,
    /// Edges removed (`|E \ Ê|`).
    pub edges_removed: usize,
    /// Edges inserted (`|Ê \ E|`).
    pub edges_inserted: usize,
    /// EMD between degree distributions (Figure 7a).
    pub emd_degree: f64,
    /// EMD between finite geodesic-length distributions (Figure 7b).
    pub emd_geodesic: f64,
    /// Change in the fraction of unreachable pairs (extra transparency on
    /// top of the finite-geodesic EMD).
    pub unreachable_delta: f64,
    /// Mean |C_i − C_i'| (Figure 8 y-axis).
    pub mean_cc_diff: f64,
    /// |λ₁ − λ₁'| of the adjacency matrices (spectral utility).
    pub lambda1_diff: f64,
}

impl UtilityReport {
    /// Computes every metric. Cost is dominated by the two geodesic
    /// distributions (one BFS per vertex per graph).
    pub fn compute(original: &Graph, anonymized: &Graph) -> Self {
        let (removed, inserted) = edge_edit_counts(original, anonymized);
        let deg_before = GraphStats::degree_histogram(original);
        let deg_after = GraphStats::degree_histogram(anonymized);
        let (geo_before, unreach_before) = geodesic_distribution(original);
        let (geo_after, unreach_after) = geodesic_distribution(anonymized);
        let n = original.num_vertices() as f64;
        let pairs = (n * (n - 1.0) / 2.0).max(1.0);
        UtilityReport {
            distortion: distortion(original, anonymized),
            edges_removed: removed,
            edges_inserted: inserted,
            emd_degree: emd_1d(&deg_before, &deg_after),
            emd_geodesic: emd_1d(&geo_before, &geo_after),
            unreachable_delta: (unreach_after as f64 - unreach_before as f64) / pairs,
            mean_cc_diff: mean_cc_difference(original, anonymized),
            lambda1_diff: (spectral_summary(original).lambda1
                - spectral_summary(anonymized).lambda1)
                .abs(),
        }
    }
}

impl std::fmt::Display for UtilityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "distortion={:.4} (−{} +{}), emd_deg={:.4}, emd_geo={:.4}, Δcc={:.4}, Δλ1={:.4}",
            self.distortion,
            self.edges_removed,
            self.edges_inserted,
            self.emd_degree,
            self.emd_geodesic,
            self.mean_cc_diff,
            self.lambda1_diff
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        Graph::from_edges(5, [(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn identity_report_is_all_zero() {
        let g = triangle_plus_tail();
        let r = UtilityReport::compute(&g, &g);
        assert_eq!(r.distortion, 0.0);
        assert_eq!(r.edges_removed, 0);
        assert_eq!(r.edges_inserted, 0);
        assert_eq!(r.emd_degree, 0.0);
        assert_eq!(r.emd_geodesic, 0.0);
        assert_eq!(r.unreachable_delta, 0.0);
        assert_eq!(r.mean_cc_diff, 0.0);
        assert_eq!(r.lambda1_diff, 0.0);
    }

    #[test]
    fn removal_shows_up_in_every_metric() {
        let g = triangle_plus_tail();
        let mut h = g.clone();
        h.remove_edge(0, 1);
        let r = UtilityReport::compute(&g, &h);
        assert!((r.distortion - 0.2).abs() < 1e-12);
        assert_eq!(r.edges_removed, 1);
        assert_eq!(r.edges_inserted, 0);
        assert!(r.emd_degree > 0.0);
        assert!(r.emd_geodesic > 0.0);
        assert!(r.mean_cc_diff > 0.0);
        assert!(r.lambda1_diff > 0.0);
        assert_eq!(r.unreachable_delta, 0.0);
    }

    #[test]
    fn disconnection_is_reported() {
        let g = triangle_plus_tail();
        let mut h = g.clone();
        h.remove_edge(3, 4);
        let r = UtilityReport::compute(&g, &h);
        // Vertex 4 became unreachable from the other 4 vertices: 4 pairs of 10.
        assert!((r.unreachable_delta - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_fields() {
        let g = triangle_plus_tail();
        let text = UtilityReport::compute(&g, &g).to_string();
        for needle in ["distortion=", "emd_deg=", "emd_geo=", "Δcc=", "Δλ1="] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
