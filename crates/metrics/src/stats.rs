//! Structural descriptors: the columns of Tables 2 and 3.

use crate::clustering::average_clustering;
use crate::histogram::Histogram;
use lopacity_graph::{traversal, Graph};

/// The property row the paper reports per dataset: vertex/edge counts,
/// diameter, average degree, degree standard deviation and average
/// clustering coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub nodes: usize,
    /// Number of undirected edges.
    pub links: usize,
    /// Longest geodesic among reachable pairs.
    pub diameter: u32,
    /// Mean degree.
    pub avg_degree: f64,
    /// Population standard deviation of the degrees (STDD column).
    pub degree_stdd: f64,
    /// Average clustering coefficient (ACC column).
    pub acc: f64,
}

impl GraphStats {
    /// Computes all descriptors. Diameter costs one BFS per vertex; for the
    /// graph sizes of the evaluation (≤ 10⁴ vertices) this is seconds, not
    /// hours.
    pub fn compute(graph: &Graph) -> Self {
        let degrees = Histogram::from_values(graph.degree_sequence());
        GraphStats {
            nodes: graph.num_vertices(),
            links: graph.num_edges(),
            diameter: traversal::diameter(graph),
            avg_degree: degrees.mean(),
            degree_stdd: degrees.std_dev(),
            acc: average_clustering(graph),
        }
    }

    /// Degree histogram of a graph (input to the EMD utility metric).
    pub fn degree_histogram(graph: &Graph) -> Histogram {
        Histogram::from_values(graph.degree_sequence())
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} diam={} avg_deg={:.2} stdd={:.2} acc={:.4}",
            self.nodes, self.links, self.diameter, self.avg_degree, self.degree_stdd, self.acc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_paper_graph() {
        let g = Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.links, 10);
        assert_eq!(s.diameter, 3);
        assert!((s.avg_degree - 20.0 / 7.0).abs() < 1e-12);
        assert!(s.degree_stdd > 0.0);
        assert!(s.acc > 0.0 && s.acc <= 1.0);
    }

    #[test]
    fn regular_graph_has_zero_degree_stdd() {
        let cycle = Graph::from_edges(5, (0..5u32).map(|i| (i, (i + 1) % 5))).unwrap();
        let s = GraphStats::compute(&cycle);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.degree_stdd, 0.0);
        assert_eq!(s.diameter, 2);
        assert_eq!(s.acc, 0.0);
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&Graph::new(3));
        assert_eq!(s.links, 0);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.acc, 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s = GraphStats::compute(&Graph::new(2));
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("acc="));
    }
}
