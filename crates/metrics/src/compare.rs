//! Cross-model comparison reports: many anonymization models, one graph,
//! matched edit budgets.
//!
//! This module is the *data* half of the comparison harness: plain rows
//! and cells assembled by `crates/models` (which knows the privacy-model
//! semantics) and serialized here as machine-readable JSON (`COMPARE.json`)
//! and CSV. Keeping the builder in `lopacity-metrics` — which depends only
//! on `lopacity-graph` — means any crate that can score a graph can emit a
//! comparison report; the cells are generic `(certifier, certified,
//! violations, leakage)` tuples with no reference to specific models.
//!
//! A report is rectangular by construction: every row carries one cell per
//! certifier in [`CompareReport::certifiers`], in that order
//! ([`CompareReport::push_row`] asserts it), so the CSV columns line up and
//! the JSON objects share keys.

use crate::report::UtilityReport;
use std::fmt::Write as _;

/// One model's output scored by one certifier — the "does A's output leak
/// under B?" cell of the comparison matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCell {
    /// Name of the certifying model (column identity).
    pub certifier: String,
    /// Whether the output satisfies the certifier's notion outright.
    pub certified: bool,
    /// The certifier's count of unmet constraints (0 ⇔ certified).
    pub violations: u64,
    /// The certifier's scalar leakage score in `[0, 1]` (model-specific
    /// semantics; for L-opacity this is `maxLO`).
    pub leakage: f64,
}

/// One anonymization model's run on the shared graph.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Short stable model identifier (CSV cell, JSON key).
    pub model: String,
    /// Human-readable label with parameters.
    pub label: String,
    /// The model's own verdict on its output.
    pub achieved: bool,
    /// Edges removed by the run.
    pub removed: usize,
    /// Edges inserted by the run.
    pub inserted: usize,
    /// Greedy steps committed.
    pub steps: usize,
    /// Candidate evaluations spent.
    pub trials: u64,
    /// Wall-clock seconds for the run.
    pub secs: f64,
    /// Utility of the output against the shared original graph.
    pub utility: UtilityReport,
    /// One cell per report certifier, in report order.
    pub cells: Vec<CrossCell>,
}

/// The full comparison: context, certifier columns, one row per model.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// `|V|` of the shared input graph.
    pub vertices: usize,
    /// `|E|` of the shared input graph.
    pub edges: usize,
    /// The matched edit budget every row ran under.
    pub budget: usize,
    /// Free-form experiment parameters (`l`, `theta`, `k`, ...), emitted
    /// verbatim so downstream tooling can reconstruct the setup.
    pub params: Vec<(String, String)>,
    /// Certifier column names; every row's `cells` must match this order.
    pub certifiers: Vec<String>,
    /// One row per model run.
    pub rows: Vec<ModelRow>,
}

impl CompareReport {
    /// Appends a row, asserting its cells align with the certifier columns.
    ///
    /// # Panics
    /// Panics when the row's cell names or order disagree with
    /// [`CompareReport::certifiers`] — a malformed report is a harness bug,
    /// not an input error.
    pub fn push_row(&mut self, row: ModelRow) {
        assert_eq!(
            row.cells.iter().map(|c| c.certifier.as_str()).collect::<Vec<_>>(),
            self.certifiers.iter().map(String::as_str).collect::<Vec<_>>(),
            "row {} cells must match the report's certifier columns",
            row.model
        );
        self.rows.push(row);
    }

    /// The whole report as a JSON object (hand-rolled; the workspace has
    /// no serde). Keys are stable; numbers are finite decimals.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"vertices\": {},", self.vertices);
        let _ = writeln!(out, "  \"edges\": {},", self.edges);
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        out.push_str("  \"params\": {");
        for (i, (key, value)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(key), json_str(value));
        }
        out.push_str("},\n");
        out.push_str("  \"certifiers\": [");
        for (i, name) in self.certifiers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(name));
        }
        out.push_str("],\n");
        out.push_str("  \"models\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"model\": {},", json_str(&row.model));
            let _ = writeln!(out, "      \"label\": {},", json_str(&row.label));
            let _ = writeln!(out, "      \"achieved\": {},", row.achieved);
            let _ = writeln!(out, "      \"removed\": {},", row.removed);
            let _ = writeln!(out, "      \"inserted\": {},", row.inserted);
            let _ = writeln!(out, "      \"steps\": {},", row.steps);
            let _ = writeln!(out, "      \"trials\": {},", row.trials);
            let _ = writeln!(out, "      \"secs\": {:.3},", row.secs);
            let u = &row.utility;
            let _ = writeln!(
                out,
                "      \"utility\": {{\"distortion\": {:.6}, \"emd_degree\": {:.6}, \
                 \"emd_geodesic\": {:.6}, \"unreachable_delta\": {:.6}, \
                 \"mean_cc_diff\": {:.6}, \"lambda1_diff\": {:.6}}},",
                u.distortion,
                u.emd_degree,
                u.emd_geodesic,
                u.unreachable_delta,
                u.mean_cc_diff,
                u.lambda1_diff
            );
            out.push_str("      \"cross\": {");
            for (j, cell) in row.cells.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{}: {{\"certified\": {}, \"violations\": {}, \"leakage\": {:.6}}}",
                    json_str(&cell.certifier),
                    cell.certified,
                    cell.violations,
                    cell.leakage
                );
            }
            out.push_str("}\n");
            out.push_str(if i + 1 < self.rows.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The CSV header matching [`CompareReport::csv_rows`]: fixed run and
    /// utility columns, then `certified_*`/`violations_*`/`leakage_*`
    /// triplets per certifier.
    pub fn csv_header(&self) -> String {
        let mut header = String::from(
            "model,achieved,budget,removed,inserted,steps,trials,secs,\
             distortion,emd_degree,emd_geodesic,unreachable_delta,mean_cc_diff,lambda1_diff",
        );
        for name in &self.certifiers {
            let _ = write!(
                header,
                ",certified_{name},violations_{name},leakage_{name}",
            );
        }
        header
    }

    /// One CSV line per row, in report order (no header; pair with
    /// [`CompareReport::csv_header`]).
    pub fn csv_rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|row| {
                let u = &row.utility;
                let mut line = format!(
                    "{},{},{},{},{},{},{},{:.3},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                    row.model,
                    row.achieved,
                    self.budget,
                    row.removed,
                    row.inserted,
                    row.steps,
                    row.trials,
                    row.secs,
                    u.distortion,
                    u.emd_degree,
                    u.emd_geodesic,
                    u.unreachable_delta,
                    u.mean_cc_diff,
                    u.lambda1_diff
                );
                for cell in &row.cells {
                    let _ = write!(
                        line,
                        ",{},{},{:.6}",
                        cell.certified, cell.violations, cell.leakage
                    );
                }
                line
            })
            .collect()
    }
}

/// Minimal JSON string literal (quotes, backslashes, and control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity_graph::Graph;

    fn sample_report() -> CompareReport {
        let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        let utility = UtilityReport::compute(&g, &g);
        let mut report = CompareReport {
            vertices: 4,
            edges: 3,
            budget: 2,
            params: vec![("l".into(), "2".into()), ("theta".into(), "0.50".into())],
            certifiers: vec!["alpha".into(), "beta".into()],
            rows: Vec::new(),
        };
        report.push_row(ModelRow {
            model: "alpha".into(),
            label: "alpha(x=1)".into(),
            achieved: true,
            removed: 2,
            inserted: 0,
            steps: 2,
            trials: 17,
            secs: 0.25,
            utility,
            cells: vec![
                CrossCell {
                    certifier: "alpha".into(),
                    certified: true,
                    violations: 0,
                    leakage: 0.5,
                },
                CrossCell {
                    certifier: "beta".into(),
                    certified: false,
                    violations: 3,
                    leakage: 1.0,
                },
            ],
        });
        report
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_report().to_json();
        for needle in [
            "\"vertices\": 4",
            "\"budget\": 2",
            "\"params\": {\"l\": \"2\", \"theta\": \"0.50\"}",
            "\"certifiers\": [\"alpha\", \"beta\"]",
            "\"model\": \"alpha\"",
            "\"beta\": {\"certified\": false, \"violations\": 3, \"leakage\": 1.000000}",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
        // Balanced braces/brackets — a cheap well-formedness smoke check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_header_and_rows_are_rectangular() {
        let report = sample_report();
        let header = report.csv_header();
        let cols = header.split(',').count();
        assert!(header.ends_with("leakage_beta"));
        for line in report.csv_rows() {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
    }

    #[test]
    #[should_panic(expected = "certifier columns")]
    fn misaligned_cells_are_rejected() {
        let mut report = sample_report();
        let mut row = report.rows[0].clone();
        row.cells.pop();
        report.push_row(row);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
