//! Geodesic-distance distributions.
//!
//! Figure 7b of the paper compares the distribution of shortest-path lengths
//! before and after anonymization via EMD. [`geodesic_distribution`] returns
//! the histogram of *finite* geodesic distances over all unordered vertex
//! pairs, plus the number of unreachable pairs. The EMD is computed on the
//! normalized finite part (the paper does not define a ground distance to
//! "infinity"); the unreachable count lets callers report the disconnection
//! change separately.

use crate::histogram::Histogram;
use lopacity_graph::traversal::{bfs_distances_into, UNREACHABLE};
use lopacity_graph::{Graph, VertexId};

/// Histogram of finite geodesic distances across unordered pairs, plus the
/// count of unreachable pairs. One full BFS per vertex: `O(V (V + E))`.
pub fn geodesic_distribution(graph: &Graph) -> (Histogram, u64) {
    let n = graph.num_vertices();
    let mut hist = Histogram::new();
    let mut unreachable = 0u64;
    let mut dist = Vec::new();
    for src in 0..n as VertexId {
        bfs_distances_into(graph, src, &mut dist);
        // Count each unordered pair once, from its smaller endpoint.
        for &d in &dist[src as usize + 1..n] {
            match d {
                UNREACHABLE => unreachable += 1,
                d => hist.add(d as usize),
            }
        }
    }
    (hist, unreachable)
}

/// Mean finite geodesic distance (0 when no pair is reachable) — the
/// "average path length" small-world statistic cited in the introduction.
pub fn mean_geodesic(graph: &Graph) -> f64 {
    let (hist, _) = geodesic_distribution(graph);
    hist.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_distribution() {
        // Path 0-1-2-3: distances {1:3, 2:2, 3:1}.
        let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        let (h, unreachable) = geodesic_distribution(&g);
        assert_eq!(unreachable, 0);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn disconnected_pairs_are_counted_separately() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        let (h, unreachable) = geodesic_distribution(&g);
        assert_eq!(h.total(), 2);
        assert_eq!(h.count(1), 2);
        assert_eq!(unreachable, 4);
    }

    #[test]
    fn empty_graph_has_only_unreachable_pairs() {
        let g = Graph::new(4);
        let (h, unreachable) = geodesic_distribution(&g);
        assert_eq!(h.total(), 0);
        assert_eq!(unreachable, 6);
    }

    #[test]
    fn mean_geodesic_of_star_is_below_two() {
        // Star: 3 pairs at distance 1 (hub-leaf... 4 vertices: 3 spokes) and
        // 3 leaf pairs at distance 2 -> mean 1.5.
        let g = Graph::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)]).unwrap();
        assert!((mean_geodesic(&g) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_total_plus_unreachable_covers_all_pairs() {
        let g = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (3, 4)]).unwrap();
        let (h, unreachable) = geodesic_distribution(&g);
        assert_eq!(h.total() + unreachable, 15);
    }
}
