//! Clustering coefficients.
//!
//! The paper measures, for every vertex, the local clustering coefficient
//! `C_i` and reports the mean of `|C_i − C_i'|` between the original and the
//! anonymized graph (Section 6.2, Figure 8). We use the standard simple-graph
//! definition `C_i = 2 e_i / (k_i (k_i − 1))` where `e_i` is the number of
//! edges among the `k_i` neighbours of `i`. (The paper's inline formula omits
//! the factor 2, but its reported average clustering coefficients — e.g.
//! 0.6047 for Google, Table 2 — exceed 1/2, which is only possible with the
//! standard factor-2 normalization, so that is what we implement.)
//! Vertices of degree < 2 have `C_i = 0` by convention.

use lopacity_graph::{Graph, VertexId};

/// Local clustering coefficient of every vertex.
pub fn local_clustering(graph: &Graph) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut out = vec![0.0; n];
    for v in 0..n as VertexId {
        out[v as usize] = local_clustering_of(graph, v);
    }
    out
}

/// Local clustering coefficient of one vertex.
pub fn local_clustering_of(graph: &Graph, v: VertexId) -> f64 {
    let nbrs = graph.neighbors(v);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    // Count edges among neighbours; iterate the smaller adjacency per pair by
    // scanning each neighbour's list against the (sorted) neighbour slice.
    for (idx, &a) in nbrs.iter().enumerate() {
        let rest = &nbrs[idx + 1..];
        if rest.is_empty() {
            break;
        }
        let a_adj = graph.neighbors(a);
        // Merge-count the sorted intersection of a's adjacency and `rest`.
        let (mut i, mut j) = (0usize, 0usize);
        while i < a_adj.len() && j < rest.len() {
            match a_adj[i].cmp(&rest[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    links += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    (2 * links) as f64 / (k * (k - 1)) as f64
}

/// Average clustering coefficient over all vertices (degree < 2 counted as
/// 0), i.e. the ACC column of Tables 2 and 3.
pub fn average_clustering(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    local_clustering(graph).iter().sum::<f64>() / n as f64
}

/// Mean of `|C_i − C_i'|` over all vertices (Section 6.2): the quantity on
/// the y-axis of Figure 8.
///
/// # Panics
/// Panics when the graphs have different vertex counts.
pub fn mean_cc_difference(original: &Graph, anonymized: &Graph) -> f64 {
    assert_eq!(
        original.num_vertices(),
        anonymized.num_vertices(),
        "graphs must share a vertex set"
    );
    let n = original.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let before = local_clustering(original);
    let after = local_clustering(anonymized);
    before
        .iter()
        .zip(&after)
        .map(|(b, a)| (b - a).abs())
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_full_clustering() {
        let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2), (0, 2)]).unwrap();
        assert_eq!(local_clustering(&g), vec![1.0, 1.0, 1.0]);
        assert_eq!(average_clustering(&g), 1.0);
    }

    #[test]
    fn path_has_zero_clustering() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        assert_eq!(local_clustering(&g), vec![0.0; 4]);
    }

    #[test]
    fn triangle_with_pendant() {
        // 0-1-2 triangle plus pendant 3 on vertex 0.
        let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (0, 2), (0, 3)]).unwrap();
        let cc = local_clustering(&g);
        // Vertex 0 has neighbours {1, 2, 3}; one edge among them -> 2*1/(3*2).
        assert!((cc[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cc[1], 1.0);
        assert_eq!(cc[2], 1.0);
        assert_eq!(cc[3], 0.0);
    }

    #[test]
    fn mean_difference_detects_broken_triangle() {
        let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2), (0, 2)]).unwrap();
        let mut h = g.clone();
        h.remove_edge(0, 1);
        // All three coefficients fall from 1 to 0.
        assert!((mean_cc_difference(&g, &h) - 1.0).abs() < 1e-12);
        assert_eq!(mean_cc_difference(&g, &g), 0.0);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = Graph::new(0);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(mean_cc_difference(&g, &g), 0.0);
    }

    #[test]
    fn star_centre_has_zero_clustering() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)]).unwrap();
        assert_eq!(average_clustering(&g), 0.0);
    }
}
