//! Graph edit-distance ratio (paper Equation 1).

use lopacity_graph::Graph;

/// Counts `(removed, inserted)` edges between an original and an anonymized
/// graph: `removed = |E \ Ê|`, `inserted = |Ê \ E|`.
///
/// # Panics
/// Panics when the two graphs have different vertex counts — anonymization
/// never adds or deletes vertices.
pub fn edge_edit_counts(original: &Graph, anonymized: &Graph) -> (usize, usize) {
    assert_eq!(
        original.num_vertices(),
        anonymized.num_vertices(),
        "graphs must share a vertex set"
    );
    let mut removed = 0usize;
    for e in original.edges() {
        if !anonymized.has_edge(e.u(), e.v()) {
            removed += 1;
        }
    }
    let mut inserted = 0usize;
    for e in anonymized.edges() {
        if !original.has_edge(e.u(), e.v()) {
            inserted += 1;
        }
    }
    (removed, inserted)
}

/// Distortion `D(E, Ê) = |E ∪ Ê − E ∩ Ê| / |E|` (Equation 1): the symmetric
/// difference of the edge sets, normalized by the original edge count.
///
/// Returns 0 for an edgeless original that stayed edgeless, and `+∞`-free
/// behaviour otherwise: an edgeless original that gained edges yields
/// `f64::INFINITY`, which callers should treat as "undefined".
pub fn distortion(original: &Graph, anonymized: &Graph) -> f64 {
    let (removed, inserted) = edge_edit_counts(original, anonymized);
    let delta = removed + inserted;
    if delta == 0 {
        return 0.0;
    }
    delta as f64 / original.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(6, edges.iter().copied()).unwrap()
    }

    #[test]
    fn identical_graphs_have_zero_distortion() {
        let g = graph(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(distortion(&g, &g), 0.0);
        assert_eq!(edge_edit_counts(&g, &g), (0, 0));
    }

    #[test]
    fn pure_removal() {
        let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let h = graph(&[(0, 1), (1, 2)]);
        assert_eq!(edge_edit_counts(&g, &h), (2, 0));
        assert!((distortion(&g, &h) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn removal_and_insertion_both_count() {
        // Removal/Insertion keeps |E| constant but distortion still counts
        // both sides of the symmetric difference.
        let g = graph(&[(0, 1), (1, 2)]);
        let h = graph(&[(0, 1), (3, 4)]);
        assert_eq!(edge_edit_counts(&g, &h), (1, 1));
        assert!((distortion(&g, &h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_to_full_is_infinite() {
        let g = graph(&[]);
        let h = graph(&[(0, 1)]);
        assert!(distortion(&g, &h).is_infinite());
        assert_eq!(distortion(&g, &g), 0.0);
    }

    #[test]
    fn distortion_is_order_sensitive_in_denominator() {
        let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let h = graph(&[(0, 1)]);
        assert!((distortion(&g, &h) - 0.75).abs() < 1e-12);
        assert!((distortion(&h, &g) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a vertex set")]
    fn rejects_vertex_count_mismatch() {
        let g = Graph::new(3);
        let h = Graph::new(4);
        distortion(&g, &h);
    }
}
