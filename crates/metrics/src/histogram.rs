//! Integer-valued histograms and their normalized distributions.

/// A histogram over non-negative integer values (degree values, geodesic
/// lengths, ...). Bins are dense from 0 to the largest observed value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Builds a histogram from an iterator of observations.
    pub fn from_values<I: IntoIterator<Item = usize>>(values: I) -> Self {
        let mut h = Histogram::new();
        for v in values {
            h.add(v);
        }
        h
    }

    /// Records one observation of `value`.
    pub fn add(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Records `count` observations of `value`.
    pub fn add_many(&mut self, value: usize, count: u64) {
        if count == 0 {
            return;
        }
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += count;
        self.total += count;
    }

    /// Count in bin `value` (0 beyond the last bin).
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest observed value, or `None` for an empty histogram.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Probability mass per bin, padded with zeros to `min_len` bins.
    /// An empty histogram yields all-zero mass.
    pub fn normalized(&self, min_len: usize) -> Vec<f64> {
        let len = self.counts.len().max(min_len);
        let mut mass = vec![0.0; len];
        if self.total == 0 {
            return mass;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            mass[i] = c as f64 / self.total as f64;
        }
        mass
    }

    /// Mean of the observations (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().enumerate().map(|(v, &c)| v as f64 * c as f64).sum();
        sum / self.total as f64
    }

    /// Population standard deviation of the observations.
    pub fn std_dev(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| {
                let d = v as f64 - mean;
                d * d * c as f64
            })
            .sum::<f64>()
            / self.total as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_counts_correctly() {
        let h = Histogram::from_values([1, 2, 2, 5]);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max_value(), Some(5));
    }

    #[test]
    fn normalized_sums_to_one_and_pads() {
        let h = Histogram::from_values([0, 0, 1, 3]);
        let p = h.normalized(6);
        assert_eq!(p.len(), 6);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert_eq!(p[5], 0.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.normalized(3), vec![0.0, 0.0, 0.0]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std_dev(), 0.0);
    }

    #[test]
    fn mean_and_std_dev_match_hand_computation() {
        // Values {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population std dev 2.
        let h = Histogram::from_values([2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert!((h.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_many_equals_repeated_add() {
        let mut a = Histogram::new();
        a.add_many(3, 4);
        a.add_many(7, 0);
        let b = Histogram::from_values([3, 3, 3, 3]);
        assert_eq!(a, b);
    }
}
