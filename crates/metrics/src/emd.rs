//! Earth-Mover's Distance between one-dimensional distributions.
//!
//! The paper (Section 6.2) uses EMD between the degree distributions and
//! between the geodesic-distance distributions of the original and altered
//! graph as alteration measures. On the real line with unit ground distance,
//! EMD has a closed form: the L1 distance between the two CDFs
//! (a classic result; see Rubner et al., reference \[20\] of the paper, for the general transportation
//! formulation). Both inputs are normalized to probability mass first, as
//! the compared populations can differ in size (e.g. geodesic counts change
//! when edges are removed).

use crate::histogram::Histogram;

/// EMD between two histograms interpreted as 1-D probability distributions
/// over their integer bins.
///
/// Both histograms are normalized to total mass 1 before comparison; an
/// empty histogram is treated as all mass at bin 0, which lets callers
/// compare against degenerate graphs (e.g. the empty graph GADES produces)
/// without special-casing.
pub fn emd_1d(a: &Histogram, b: &Histogram) -> f64 {
    let len = a
        .max_value()
        .unwrap_or(0)
        .max(b.max_value().unwrap_or(0))
        + 1;
    let pa = normalized_or_point_mass(a, len);
    let pb = normalized_or_point_mass(b, len);
    emd_from_masses(&pa, &pb)
}

/// EMD between two explicit probability-mass vectors (must be equal length
/// and each sum to ~1).
pub fn emd_from_masses(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mass vectors must have equal length");
    let mut cdf_gap = 0.0f64;
    let mut total = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        cdf_gap += x - y;
        total += cdf_gap.abs();
    }
    total
}

fn normalized_or_point_mass(h: &Histogram, len: usize) -> Vec<f64> {
    if h.total() == 0 {
        let mut mass = vec![0.0; len];
        mass[0] = 1.0;
        return mass;
    }
    h.normalized(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_emd() {
        let a = Histogram::from_values([1, 2, 2, 3]);
        assert_eq!(emd_1d(&a, &a), 0.0);
    }

    #[test]
    fn point_masses_one_bin_apart() {
        let a = Histogram::from_values([1, 1]);
        let b = Histogram::from_values([2, 2]);
        assert!((emd_1d(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_scales_with_shift_distance() {
        let a = Histogram::from_values([0]);
        let b = Histogram::from_values([5]);
        assert!((emd_1d(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = Histogram::from_values([0, 1, 1, 4]);
        let b = Histogram::from_values([2, 2, 3]);
        assert!((emd_1d(&a, &b) - emd_1d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn emd_satisfies_triangle_inequality_on_examples() {
        let a = Histogram::from_values([0, 0, 1]);
        let b = Histogram::from_values([1, 2, 2]);
        let c = Histogram::from_values([3, 4]);
        assert!(emd_1d(&a, &c) <= emd_1d(&a, &b) + emd_1d(&b, &c) + 1e-12);
    }

    #[test]
    fn half_mass_moved_one_step() {
        // a: all mass at 0; b: half at 0, half at 1 -> EMD 0.5.
        let a = Histogram::from_values([0, 0]);
        let b = Histogram::from_values([0, 1]);
        assert!((emd_1d(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_acts_as_point_mass_at_zero() {
        let empty = Histogram::new();
        let b = Histogram::from_values([3]);
        assert!((emd_1d(&empty, &b) - 3.0).abs() < 1e-12);
        assert_eq!(emd_1d(&empty, &empty), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn emd_from_masses_rejects_length_mismatch() {
        emd_from_masses(&[1.0], &[0.5, 0.5]);
    }
}
