//! Utility metrics for anonymized graphs (paper Section 6.2).
//!
//! The evaluation of *L-opacity* quantifies how much an anonymization
//! altered a graph using:
//!
//! * [`distortion()`](crate::distortion()) — the graph edit-distance ratio of Equation 1,
//!   `|E Δ Ê| / |E|`;
//! * [`emd`] — Earth-Mover's Distance between the degree distributions and
//!   between the geodesic-distance distributions of the original and
//!   anonymized graphs;
//! * [`clustering`] — local clustering coefficients and the mean per-vertex
//!   difference `mean |C_i − C_i'|`;
//! * [`stats`] — the structural descriptors of Tables 2 and 3 (diameter,
//!   average degree, degree standard deviation, average clustering
//!   coefficient);
//! * [`spectral`] — adjacency spectral radius and spectral gap via power
//!   iteration (the abstract's "spectral … graph properties");
//! * [`report`] — a one-stop [`report::UtilityReport`] bundling everything
//!   for an (original, anonymized) pair;
//! * [`compare`] — the cross-model [`compare::CompareReport`] builder
//!   (one row per privacy model, one certifier cell per rival notion)
//!   with `COMPARE.json` / CSV serialization for the comparison harness.

pub mod clustering;
pub mod compare;
pub mod distortion;
pub mod emd;
pub mod geodesic;
pub mod histogram;
pub mod report;
pub mod spectral;
pub mod stats;

pub use clustering::{local_clustering, mean_cc_difference};
pub use compare::{CompareReport, CrossCell, ModelRow};
pub use distortion::{distortion, edge_edit_counts};
pub use emd::emd_1d;
pub use geodesic::geodesic_distribution;
pub use histogram::Histogram;
pub use report::UtilityReport;
pub use stats::GraphStats;
