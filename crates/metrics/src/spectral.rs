//! Spectral graph properties via shifted power iteration.
//!
//! The paper's abstract promises "utility metrics quantifying spectral and
//! structural graph properties". The structural ones are explicit in Section
//! 6.2; for the spectral side we expose the adjacency spectral radius λ₁ and
//! the second-largest (algebraic) adjacency eigenvalue λ₂ — `λ₁ − λ₂` is a
//! classic expansion proxy that anonymization should perturb as little as
//! possible.
//!
//! Power iteration on a raw adjacency matrix fails to converge on bipartite
//! graphs (eigenvalues come in ±λ pairs of equal magnitude), so we iterate
//! on the shifted matrix `A + cI` with `c = Δ + 1 > λ₁`: all shifted
//! eigenvalues are positive and ordered algebraically, and the dominant one
//! is `λ₁ + c`. One deflation step then yields `λ₂ + c`.

use lopacity_graph::{Graph, VertexId};

/// Result of the shifted power-iteration eigensolver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralSummary {
    /// Largest adjacency eigenvalue λ₁ (spectral radius).
    pub lambda1: f64,
    /// Second-largest algebraic adjacency eigenvalue λ₂.
    pub lambda2: f64,
}

impl SpectralSummary {
    /// Spectral gap `λ₁ − λ₂` (expansion proxy; larger = better mixing).
    pub fn gap(&self) -> f64 {
        self.lambda1 - self.lambda2
    }
}

/// Estimates λ₁ and λ₂ of the adjacency matrix. Deterministic (fixed
/// pseudo-random start vector); accuracy is ample for utility comparison.
pub fn spectral_summary(graph: &Graph) -> SpectralSummary {
    let n = graph.num_vertices();
    if n == 0 || graph.num_edges() == 0 {
        return SpectralSummary { lambda1: 0.0, lambda2: 0.0 };
    }
    let shift = graph.max_degree() as f64 + 1.0;
    let (mu1, v1) = shifted_power_iteration(graph, shift, None, 0x5EED_0001);
    let lambda1 = mu1 - shift;
    let lambda2 = if n >= 2 {
        let (mu2, _) = shifted_power_iteration(graph, shift, Some(&v1), 0x5EED_0002);
        mu2 - shift
    } else {
        0.0
    };
    SpectralSummary { lambda1, lambda2 }
}

/// Dominant eigenpair of `A + shift*I`, restricted to the complement of
/// `deflate` when given.
///
/// Convergence is judged by the eigen-residual `||A'x − μx||`, not by μ
/// stalling: with a (near-)degenerate spectrum the Rayleigh quotient can
/// plateau while the iterate still mixes eigenspaces.
fn shifted_power_iteration(
    graph: &Graph,
    shift: f64,
    deflate: Option<&[f64]>,
    seed: u64,
) -> (f64, Vec<f64>) {
    let n = graph.num_vertices();
    // Deterministic per-run pseudo-random start: a generic vector avoids
    // starting (near-)orthogonal to the dominant eigenvector of the
    // deflated subspace.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            0.5 + (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect();
    if let Some(d) = deflate {
        project_out(&mut x, d);
    }
    if normalize(&mut x) == 0.0 {
        return (0.0, x);
    }
    let mut y = vec![0.0; n];
    let mut mu = 0.0f64;
    for _ in 0..5000 {
        // y = (A + shift I) x
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi = shift * xi;
        }
        for u in 0..n as VertexId {
            let xu = x[u as usize];
            for &w in graph.neighbors(u) {
                y[w as usize] += xu;
            }
        }
        if let Some(d) = deflate {
            project_out(&mut y, d);
        }
        let new_mu: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        // Residual ||y − μx|| with y still unnormalized.
        let residual: f64 = y
            .iter()
            .zip(&x)
            .map(|(yi, xi)| {
                let r = yi - new_mu * xi;
                r * r
            })
            .sum::<f64>()
            .sqrt();
        if normalize(&mut y) == 0.0 {
            return (0.0, y);
        }
        std::mem::swap(&mut x, &mut y);
        mu = new_mu;
        if residual <= 1e-9 * new_mu.abs().max(1.0) {
            return (mu, x);
        }
    }
    (mu, x)
}

fn project_out(x: &mut [f64], dir: &[f64]) {
    let dot: f64 = x.iter().zip(dir).map(|(a, b)| a * b).sum();
    for (xi, di) in x.iter_mut().zip(dir) {
        *xi -= dot * di;
    }
}

fn normalize(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_spectrum() {
        // K_n has λ₁ = n-1 and all other eigenvalues -1.
        let n = 6u32;
        let mut g = Graph::new(n as usize);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        let s = spectral_summary(&g);
        assert!((s.lambda1 - 5.0).abs() < 1e-6, "lambda1 = {}", s.lambda1);
        assert!((s.lambda2 - (-1.0)).abs() < 1e-4, "lambda2 = {}", s.lambda2);
        assert!((s.gap() - 6.0).abs() < 1e-4);
    }

    #[test]
    fn star_graph_spectrum() {
        // Star K_{1,k} has λ₁ = sqrt(k) and λ₂ = 0.
        let g = Graph::from_edges(5, [(0u32, 1u32), (0, 2), (0, 3), (0, 4)]).unwrap();
        let s = spectral_summary(&g);
        assert!((s.lambda1 - 2.0).abs() < 1e-6, "lambda1 = {}", s.lambda1);
        assert!(s.lambda2.abs() < 1e-4, "lambda2 = {}", s.lambda2);
    }

    #[test]
    fn single_edge_spectrum_is_plus_minus_one() {
        let g = Graph::from_edges(2, [(0u32, 1u32)]).unwrap();
        let s = spectral_summary(&g);
        assert!((s.lambda1 - 1.0).abs() < 1e-6, "lambda1 = {}", s.lambda1);
        assert!((s.lambda2 - (-1.0)).abs() < 1e-4, "lambda2 = {}", s.lambda2);
    }

    #[test]
    fn empty_graph_is_zero() {
        let s = spectral_summary(&Graph::new(5));
        assert_eq!(s.lambda1, 0.0);
        assert_eq!(s.lambda2, 0.0);
        assert_eq!(s.gap(), 0.0);
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_8: λ₁ = 2, λ₂ = 2 cos(2π/8) = √2 (doubly degenerate).
        let g = Graph::from_edges(8, (0..8u32).map(|i| (i, (i + 1) % 8))).unwrap();
        let s = spectral_summary(&g);
        assert!((s.lambda1 - 2.0).abs() < 1e-5, "lambda1 = {}", s.lambda1);
        assert!((s.lambda2 - std::f64::consts::SQRT_2).abs() < 1e-4, "lambda2 = {}", s.lambda2);
    }

    #[test]
    fn two_disjoint_edges_have_degenerate_lambda1() {
        // Two components each with spectrum {±1}: λ₁ = λ₂ = 1.
        let g = Graph::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        let s = spectral_summary(&g);
        assert!((s.lambda1 - 1.0).abs() < 1e-5);
        assert!((s.lambda2 - 1.0).abs() < 1e-3, "lambda2 = {}", s.lambda2);
    }
}
