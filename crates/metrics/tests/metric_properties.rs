//! Property tests: metric axioms and cross-metric consistency.

use lopacity_graph::Graph;
use lopacity_metrics::clustering::{local_clustering, mean_cc_difference};
use lopacity_metrics::distortion::{distortion, edge_edit_counts};
use lopacity_metrics::emd::emd_1d;
use lopacity_metrics::geodesic::geodesic_distribution;
use lopacity_metrics::histogram::Histogram;
use lopacity_metrics::spectral::spectral_summary;
use lopacity_metrics::GraphStats;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..n * 2).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

fn arb_hist() -> impl Strategy<Value = Histogram> {
    proptest::collection::vec(0usize..12, 1..30).prop_map(Histogram::from_values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn emd_is_a_metric_on_samples(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
        // identity, symmetry, triangle inequality
        prop_assert!(emd_1d(&a, &a).abs() < 1e-12);
        prop_assert!((emd_1d(&a, &b) - emd_1d(&b, &a)).abs() < 1e-12);
        prop_assert!(emd_1d(&a, &c) <= emd_1d(&a, &b) + emd_1d(&b, &c) + 1e-9);
        prop_assert!(emd_1d(&a, &b) >= 0.0);
    }

    #[test]
    fn distortion_axioms(g in arb_graph(16), h in arb_graph(16)) {
        prop_assume!(g.num_vertices() == h.num_vertices());
        prop_assert_eq!(distortion(&g, &g), 0.0);
        let (removed, inserted) = edge_edit_counts(&g, &h);
        let (r2, i2) = edge_edit_counts(&h, &g);
        // Symmetric difference is symmetric in the roles.
        prop_assert_eq!(removed, i2);
        prop_assert_eq!(inserted, r2);
        if g.num_edges() > 0 {
            let d = distortion(&g, &h);
            prop_assert!((d - (removed + inserted) as f64 / g.num_edges() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn clustering_coefficients_are_probabilities(g in arb_graph(16)) {
        for (v, c) in local_clustering(&g).into_iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&c), "C_{v} = {c}");
        }
        prop_assert_eq!(mean_cc_difference(&g, &g), 0.0);
    }

    #[test]
    fn mean_cc_difference_is_symmetric_and_bounded(g in arb_graph(12), h in arb_graph(12)) {
        prop_assume!(g.num_vertices() == h.num_vertices());
        let d1 = mean_cc_difference(&g, &h);
        let d2 = mean_cc_difference(&h, &g);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn geodesic_distribution_is_complete(g in arb_graph(16)) {
        let n = g.num_vertices() as u64;
        let (hist, unreachable) = geodesic_distribution(&g);
        prop_assert_eq!(hist.total() + unreachable, n * (n - 1) / 2);
        prop_assert_eq!(hist.count(0), 0, "no zero-length geodesics among distinct pairs");
        prop_assert_eq!(hist.count(1), g.num_edges() as u64);
    }

    #[test]
    fn spectral_radius_bounds(g in arb_graph(14)) {
        let s = spectral_summary(&g);
        let max_deg = g.max_degree() as f64;
        let avg_deg = if g.num_vertices() > 0 {
            g.degree_sum() as f64 / g.num_vertices() as f64
        } else {
            0.0
        };
        // Classic bounds: avg degree <= lambda1 <= max degree.
        prop_assert!(s.lambda1 <= max_deg + 1e-6, "λ1 = {} > Δ = {max_deg}", s.lambda1);
        prop_assert!(s.lambda1 >= avg_deg - 1e-6, "λ1 = {} < avg = {avg_deg}", s.lambda1);
        prop_assert!(s.lambda2 <= s.lambda1 + 1e-6);
    }

    #[test]
    fn graph_stats_are_internally_consistent(g in arb_graph(16)) {
        let stats = GraphStats::compute(&g);
        prop_assert_eq!(stats.nodes, g.num_vertices());
        prop_assert_eq!(stats.links, g.num_edges());
        prop_assert!((0.0..=1.0).contains(&stats.acc));
        prop_assert!(stats.degree_stdd >= 0.0);
        let (hist, _) = geodesic_distribution(&g);
        if let Some(max_finite) = hist.max_value() {
            prop_assert_eq!(stats.diameter as usize, max_finite);
        } else {
            prop_assert_eq!(stats.diameter, 0);
        }
    }
}
