//! Sorted-adjacency simple graph storage.

use crate::{Edge, GraphError, VertexId};

/// A simple undirected graph: no self-loops, no parallel edges.
///
/// Adjacency is stored as one sorted `Vec<VertexId>` per vertex. This keeps
/// neighbour iteration cache-friendly, makes [`Graph::has_edge`] a binary
/// search, and — crucially for the anonymization heuristics, which perform a
/// trial insert/remove per candidate edge per greedy step — keeps edge
/// mutation at `O(deg)` with no allocation in the common case.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= VertexId::MAX as usize, "graph too large for u32 vertex ids");
        Graph { adj: vec![Vec::new(); n], num_edges: 0 }
    }

    /// Builds a graph from an edge iterator.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-loops and duplicate edges, so a
    /// successfully constructed graph is always simple.
    pub fn from_edges<I, E>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = E>,
        E: Into<(VertexId, VertexId)>,
    {
        let mut g = Graph::new(n);
        for e in edges {
            let (a, b) = e.into();
            g.try_add_edge(a, b)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted slice of `v`'s neighbours.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Whether the undirected edge `(u, v)` is present. `O(log deg)`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search the shorter adjacency list.
        let (probe, list) = if self.degree(u) <= self.degree(v) { (v, u) } else { (u, v) };
        self.adj[list as usize].binary_search(&probe).is_ok()
    }

    /// Inserts the edge `(u, v)`; returns `true` if it was newly added.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range ids — in the hot mutation paths
    /// these are programming errors. Use [`Graph::try_add_edge`] for
    /// untrusted input.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert_ne!(u, v, "self-loop ({u}, {u})");
        let n = self.num_vertices();
        assert!((u as usize) < n && (v as usize) < n, "edge ({u}, {v}) out of range (n={n})");
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency lists out of sync");
                self.adj[v as usize].insert(pos_v, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Checked edge insertion for untrusted input.
    ///
    /// # Errors
    /// Reports self-loops, out-of-range ids and duplicates as [`GraphError`].
    pub fn try_add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u as u64 });
        }
        let n = self.num_vertices();
        for &x in &[u, v] {
            if x as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: x as u64, num_vertices: n });
            }
        }
        if !self.add_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u: u.min(v) as u64, v: u.max(v) as u64 });
        }
        Ok(())
    }

    /// Removes the edge `(u, v)`; returns `true` if it was present.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let n = self.num_vertices();
        assert!((u as usize) < n && (v as usize) < n, "edge ({u}, {v}) out of range (n={n})");
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos_u) => {
                self.adj[u as usize].remove(pos_u);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect("adjacency lists out of sync");
                self.adj[v as usize].remove(pos_v);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Iterates all edges in canonical `(u < v)` lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as VertexId;
            // Each undirected edge is reported once, from its smaller endpoint.
            let start = nbrs.partition_point(|&w| w <= u);
            nbrs[start..].iter().map(move |&v| Edge::new(u, v))
        })
    }

    /// Collects all edges into a vector (canonical order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges);
        out.extend(self.edges());
        out
    }

    /// Iterates the *non-edges*: vertex pairs `(u < v)` with no edge. These
    /// are the insertion candidates of the Removal/Insertion heuristic.
    pub fn non_edges(&self) -> NonEdges<'_> {
        NonEdges { graph: self, u: 0, v: 0 }
    }

    /// Degree of every vertex, indexed by vertex id.
    pub fn degree_sequence(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sum of degrees; equals `2 * num_edges()` (handshake lemma).
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// The subgraph induced by `vertices` (paper's sampling procedure keeps
    /// every edge whose both endpoints are sampled).
    ///
    /// Returns the new graph plus the mapping `new id -> original id`.
    /// Duplicate ids in `vertices` are ignored after the first occurrence.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let n = self.num_vertices();
        let mut new_id = vec![VertexId::MAX; n];
        let mut mapping = Vec::with_capacity(vertices.len());
        for &v in vertices {
            assert!((v as usize) < n, "vertex {v} out of range (n={n})");
            if new_id[v as usize] == VertexId::MAX {
                new_id[v as usize] = mapping.len() as VertexId;
                mapping.push(v);
            }
        }
        let mut g = Graph::new(mapping.len());
        for (nu, &orig_u) in mapping.iter().enumerate() {
            for &orig_v in self.neighbors(orig_u) {
                let nv = new_id[orig_v as usize];
                if nv != VertexId::MAX && (nu as VertexId) < nv {
                    g.add_edge(nu as VertexId, nv);
                }
            }
        }
        (g, mapping)
    }

    /// Exhaustively validates the internal invariants (sorted, symmetric,
    /// simple, edge count consistent). Intended for tests and debug builds.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut half_edges = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            let u = u as VertexId;
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u} is not strictly sorted"));
            }
            for &v in nbrs {
                if v == u {
                    return Err(format!("self-loop on {u}"));
                }
                if v as usize >= self.adj.len() {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if self.adj[v as usize].binary_search(&u).is_err() {
                    return Err(format!("edge ({u}, {v}) not symmetric"));
                }
            }
            half_edges += nbrs.len();
        }
        if half_edges != 2 * self.num_edges {
            return Err(format!(
                "edge count {} inconsistent with degree sum {half_edges}",
                self.num_edges
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.num_vertices(), self.num_edges())
    }
}

/// Iterator over vertex pairs that are *not* edges. See [`Graph::non_edges`].
pub struct NonEdges<'a> {
    graph: &'a Graph,
    u: VertexId,
    v: VertexId,
}

impl Iterator for NonEdges<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let n = self.graph.num_vertices() as VertexId;
        loop {
            self.v += 1;
            if self.v >= n {
                self.u += 1;
                if self.u + 1 >= n {
                    return None;
                }
                self.v = self.u + 1;
            }
            if !self.graph.has_edge(self.u, self.v) {
                return Some(Edge::new(self.u, self.v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        // Figure 1 of the paper, vertices renumbered 1..7 -> 0..6.
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = paper_graph();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.degree_sum(), 20);
        g.check_invariants().unwrap();
    }

    #[test]
    fn paper_degrees_match_figure_1() {
        let g = paper_graph();
        // Figure 1 subscripts: 1_2 2_4 3_4 4_2 5_4 6_3 7_1 (1-indexed).
        assert_eq!(g.degree_sequence(), vec![2, 4, 4, 2, 4, 3, 1]);
    }

    #[test]
    fn has_edge_is_symmetric_and_rejects_loops() {
        let g = paper_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 6));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn add_edge_rejects_duplicates_quietly() {
        let mut g = paper_graph();
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.num_edges(), 10);
        assert!(g.add_edge(0, 6));
        assert_eq!(g.num_edges(), 11);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edge_round_trips() {
        let mut g = paper_graph();
        assert!(g.remove_edge(1, 4));
        assert!(!g.remove_edge(1, 4));
        assert_eq!(g.num_edges(), 9);
        assert!(g.add_edge(1, 4));
        assert_eq!(g.num_edges(), 10);
        g.check_invariants().unwrap();
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert!(matches!(
            Graph::from_edges(3, [(0u32, 0u32)]),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            Graph::from_edges(3, [(0u32, 5u32)]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            Graph::from_edges(3, [(0u32, 1u32), (1, 0)]),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn edges_iterates_each_edge_once_in_order() {
        let g = paper_graph();
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 10);
        let mut sorted = edges.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, edges);
        assert_eq!(edges[0], Edge::new(0, 1));
        assert_eq!(*edges.last().unwrap(), Edge::new(5, 6));
    }

    #[test]
    fn non_edges_complements_edges() {
        let g = paper_graph();
        let n = g.num_vertices();
        let non: Vec<Edge> = g.non_edges().collect();
        assert_eq!(non.len(), n * (n - 1) / 2 - g.num_edges());
        for e in &non {
            assert!(!g.has_edge(e.u(), e.v()));
        }
        // Union of edges and non-edges covers all pairs exactly once.
        let mut all: Vec<Edge> = g.edges().chain(non.iter().copied()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n * (n - 1) / 2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = paper_graph();
        let (sub, mapping) = g.induced_subgraph(&[1, 2, 4, 6]);
        assert_eq!(mapping, vec![1, 2, 4, 6]);
        assert_eq!(sub.num_vertices(), 4);
        // Edges among {1,2,4}: (1,2), (1,4), (2,4). Vertex 6 is isolated here.
        assert_eq!(sub.num_edges(), 3);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(0, 2));
        assert!(sub.has_edge(1, 2));
        assert_eq!(sub.degree(3), 0);
        sub.check_invariants().unwrap();
    }

    #[test]
    fn induced_subgraph_ignores_duplicate_ids() {
        let g = paper_graph();
        let (sub, mapping) = g.induced_subgraph(&[1, 1, 2]);
        assert_eq!(mapping, vec![1, 2]);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.non_edges().count(), 0);
        assert_eq!(g.max_degree(), 0);
        g.check_invariants().unwrap();

        let g1 = Graph::new(1);
        assert_eq!(g1.non_edges().count(), 0);
    }
}
