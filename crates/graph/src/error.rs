//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced when building or parsing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id was `>= num_vertices`.
    VertexOutOfRange { vertex: u64, num_vertices: usize },
    /// An edge `(v, v)` was supplied; simple graphs have no self-loops.
    SelfLoop { vertex: u64 },
    /// The same undirected edge appeared twice in `from_edges` input.
    DuplicateEdge { u: u64, v: u64 },
    /// An edge-list line could not be parsed.
    Parse { line: usize, message: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} (simple graphs forbid self-loops)")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v}) (simple graphs forbid parallel edges)")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge-list parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offender() {
        let e = GraphError::VertexOutOfRange { vertex: 9, num_vertices: 3 };
        assert!(e.to_string().contains('9'));
        let e = GraphError::SelfLoop { vertex: 4 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate"));
        let e = GraphError::Parse { line: 7, message: "bad".into() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_round_trips_source() {
        use std::error::Error as _;
        let e: GraphError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
