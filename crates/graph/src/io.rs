//! Edge-list I/O (SNAP style) and DOT export.
//!
//! The format is one `u v` pair per line, whitespace separated; lines
//! starting with `#` or `%` are comments. This matches the format of the
//! Stanford Large Network Dataset collection the paper samples from, so a
//! downstream user can feed real SNAP files to the CLI.

use crate::{Graph, GraphError, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Most vertices an edge list may materialize. The largest SNAP dumps the
/// paper samples stay well under this, while a single malicious line like
/// `0 4000000000` would otherwise allocate ~100 GB of adjacency headers
/// before a single edge lands.
pub const MAX_EDGE_LIST_VERTICES: usize = 100_000_000;

/// Reads an edge list. Vertex count is `max id + 1` unless `min_vertices`
/// demands more. Duplicate edges (including reversed duplicates, which SNAP
/// directed dumps contain) are merged silently; self-loops are dropped,
/// mirroring how the paper reduces raw datasets to simple graphs.
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<Graph, GraphError> {
    if min_vertices > MAX_EDGE_LIST_VERTICES {
        return Err(GraphError::Parse {
            line: 0,
            message: format!(
                "declared vertex count {min_vertices} exceeds the {MAX_EDGE_LIST_VERTICES} cap"
            ),
        });
    }
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    message: format!("expected two vertex ids, got {trimmed:?}"),
                })
            }
        };
        let parse = |s: &str| -> Result<u64, GraphError> {
            s.parse::<u64>().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid vertex id {s:?}"),
            })
        };
        let (a, b) = (parse(a)?, parse(b)?);
        if a == b {
            continue; // drop self-loops
        }
        // A graph on ids `0..=max_id` has `max_id + 1` vertices, so the cap
        // bounds the ids themselves — this both keeps `n` inside u32 range
        // and refuses the quadratic-memory ids a hostile list could declare.
        if a >= MAX_EDGE_LIST_VERTICES as u64 || b >= MAX_EDGE_LIST_VERTICES as u64 {
            return Err(GraphError::VertexOutOfRange {
                vertex: a.max(b),
                num_vertices: MAX_EDGE_LIST_VERTICES,
            });
        }
        max_id = max_id.max(a).max(b);
        edges.push((a as VertexId, b as VertexId));
    }
    let n = if edges.is_empty() { min_vertices } else { min_vertices.max(max_id as usize + 1) };
    let mut g = Graph::new(n);
    for (a, b) in edges {
        g.add_edge(a, b); // merges duplicates
    }
    Ok(g)
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, 0)
}

/// Writes the graph as an edge list, one canonical `u v` pair per line, with
/// a header comment recording vertex/edge counts (so vertex count survives a
/// round trip even when trailing vertices are isolated).
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# lopacity edge list: {} vertices, {} edges", graph.num_vertices(), graph.num_edges())?;
    writeln!(writer, "# vertices {}", graph.num_vertices())?;
    for e in graph.edges() {
        writeln!(writer, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

/// Writes the graph to a file path (buffered).
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> std::io::Result<()> {
    let file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_edge_list(graph, file)
}

/// Reads an edge list honouring the `# vertices N` header written by
/// [`write_edge_list`], so isolated trailing vertices are preserved.
pub fn read_edge_list_with_header<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut text = String::new();
    let mut reader = BufReader::new(reader);
    reader.read_to_string(&mut text)?;
    let mut min_vertices = 0usize;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# vertices ") {
            if let Ok(n) = rest.trim().parse::<usize>() {
                min_vertices = n;
            }
        }
    }
    read_edge_list(text.as_bytes(), min_vertices)
}

/// Renders the graph in Graphviz DOT format, labelling each vertex with its
/// id and degree (mirroring Figure 1's `id_degree` inscriptions).
pub fn to_dot(graph: &Graph) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("graph lopacity {\n");
    for v in 0..graph.num_vertices() {
        let _ = writeln!(out, "  {v} [label=\"{v}_{}\"];", graph.degree(v as VertexId));
    }
    for e in graph.edges() {
        let _ = writeln!(out, "  {} -- {};", e.u(), e.v());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_whitespace_and_dedup() {
        let text = "# comment\n% also comment\n0 1\n1\t2\n 2 0 \n1 0\n3 3\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        // "1 0" duplicates "0 1"; the self-loop "3 3" is dropped before max-id
        // tracking, so only ids 0..=2 remain.
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn min_vertices_pads_isolated_vertices() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_edge_list("0 1\nnot numbers here\n".as_bytes(), 0).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list("42\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn oversized_vertex_ids_are_errors_not_giant_allocations() {
        // `0 4294967295` would need n = 2^32 (one past u32 range) and
        // `0 4000000000` would allocate ~90 GB of adjacency headers; both
        // must be refused at parse time.
        for text in ["0 4294967295\n", "0 4000000000\n", "18446744073709551615 1\n"] {
            let err = read_edge_list(text.as_bytes(), 0).unwrap_err();
            assert!(
                matches!(err, GraphError::VertexOutOfRange { .. }),
                "{text:?} gave {err:?}"
            );
        }
        // The `# vertices N` header is capped the same way.
        let huge = "# vertices 99999999999\n0 1\n";
        let err = read_edge_list_with_header(huge.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (4, 5)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list_with_header(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_preserves_trailing_isolated_vertices() {
        let g = Graph::from_edges(9, [(0u32, 1u32)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list_with_header(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), 9);
    }

    #[test]
    fn dot_output_contains_all_edges_and_degree_labels() {
        let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2)]).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("1 [label=\"1_2\"];"));
        assert!(dot.starts_with("graph"));
    }
}
