//! Canonical undirected edges.

use crate::VertexId;
use std::fmt;

/// An undirected edge stored canonically with `u() < v()`.
///
/// Canonical form makes `Edge` usable as a set/map key and gives the
/// deterministic iteration order the greedy heuristics rely on for
/// reproducible tie-breaking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Builds the canonical edge between two distinct endpoints.
    ///
    /// # Panics
    /// Panics on a self-loop (`a == b`); simple graphs forbid them, so a
    /// self-loop here is a programming error, not an input error.
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loop ({a}, {a}) is not a valid simple-graph edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Smaller endpoint.
    #[inline]
    pub fn u(&self) -> VertexId {
        self.u
    }

    /// Larger endpoint.
    #[inline]
    pub fn v(&self) -> VertexId {
        self.v
    }

    /// Both endpoints as a `(small, large)` pair.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Given one endpoint, returns the opposite one.
    ///
    /// # Panics
    /// Panics when `vertex` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, vertex: VertexId) -> VertexId {
        if vertex == self.u {
            self.v
        } else if vertex == self.v {
            self.u
        } else {
            panic!("vertex {vertex} is not an endpoint of {self:?}");
        }
    }

    /// Whether `vertex` is one of the endpoints.
    #[inline]
    pub fn touches(&self, vertex: VertexId) -> bool {
        vertex == self.u || vertex == self.v
    }

    /// Whether the two edges share at least one endpoint.
    #[inline]
    pub fn shares_endpoint(&self, other: &Edge) -> bool {
        self.touches(other.u) || self.touches(other.v)
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -- {}", self.u, self.v)
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((a, b): (VertexId, VertexId)) -> Self {
        Edge::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_order() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(5, 2).endpoints(), (2, 5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = Edge::new(1, 9);
        assert_eq!(e.other(1), 9);
        assert_eq!(e.other(9), 1);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        Edge::new(1, 9).other(5);
    }

    #[test]
    fn touches_and_shares() {
        let e = Edge::new(1, 2);
        assert!(e.touches(1));
        assert!(!e.touches(3));
        assert!(e.shares_endpoint(&Edge::new(2, 7)));
        assert!(!e.shares_endpoint(&Edge::new(3, 7)));
    }

    #[test]
    fn ordering_is_lexicographic_on_canonical_pairs() {
        let mut edges = vec![Edge::new(2, 3), Edge::new(0, 9), Edge::new(0, 1)];
        edges.sort();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(0, 9), Edge::new(2, 3)]);
    }
}
