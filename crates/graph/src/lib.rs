//! Simple undirected graph substrate for the L-opacity workspace.
//!
//! The paper (Nobari et al., *L-opacity: Linkage-Aware Graph Anonymization*,
//! EDBT 2014) models a social network as a **simple graph**: undirected,
//! unweighted, no self-loops, no parallel edges. This crate provides that
//! data model plus the operations every other crate needs:
//!
//! * [`Graph`] — sorted-adjacency storage with O(deg) edge insert/remove and
//!   O(log deg) membership tests; the anonymization heuristics mutate edges
//!   millions of times, so these paths are kept allocation-free.
//! * [`Edge`] — a canonical (`u < v`) undirected edge.
//! * [`traversal`] — BFS and connected components.
//! * [`io`] — whitespace-separated edge-list files (SNAP style) and DOT
//!   export.
//!
//! # Example
//!
//! ```
//! use lopacity_graph::Graph;
//!
//! // The 7-vertex running example of the paper (Figure 1), 0-indexed.
//! let g = Graph::from_edges(7, [
//!     (0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6),
//! ]).unwrap();
//! assert_eq!(g.num_vertices(), 7);
//! assert_eq!(g.num_edges(), 10);
//! assert_eq!(g.degree(1), 4);
//! assert!(g.has_edge(5, 6));
//! ```

mod edge;
mod error;
mod graph;
pub mod io;
pub mod traversal;

pub use edge::Edge;
pub use error::GraphError;
pub use graph::{Graph, NonEdges};

/// Vertex identifier. Graphs are limited to `u32::MAX` vertices, which keeps
/// adjacency lists at half the size of `usize` ids on 64-bit targets.
pub type VertexId = u32;
