//! Breadth-first search and connectivity.

use crate::{Graph, VertexId};
use std::collections::VecDeque;

/// Distance value meaning "unreachable" in [`bfs_distances`] output.
pub const UNREACHABLE: u32 = u32::MAX;

/// Full BFS from `source`; returns a distance per vertex
/// ([`UNREACHABLE`] where no path exists).
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.num_vertices()];
    bfs_distances_into(graph, source, &mut dist);
    dist
}

/// BFS writing into a caller-provided buffer, so repeated sweeps (one per
/// source, as in diameter or geodesic-distribution computation) do not
/// allocate. The buffer is reset to [`UNREACHABLE`] first.
pub fn bfs_distances_into(graph: &Graph, source: VertexId, dist: &mut Vec<u32>) {
    let n = graph.num_vertices();
    dist.clear();
    dist.resize(n, UNREACHABLE);
    assert!((source as usize) < n, "source {source} out of range (n={n})");
    let mut queue = VecDeque::with_capacity(64);
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in graph.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
}

/// Connected components; returns `(component id per vertex, component count)`.
/// Component ids are assigned in order of their smallest vertex.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = count;
        queue.push_back(start as VertexId);
        while let Some(u) = queue.pop_front() {
            for &w in graph.neighbors(u) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Whether the graph is connected. Vacuously true for `n <= 1`.
pub fn is_connected(graph: &Graph) -> bool {
    if graph.num_vertices() <= 1 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// Vertices of the largest connected component (original ids, ascending).
pub fn largest_component(graph: &Graph) -> Vec<VertexId> {
    let (comp, count) = connected_components(graph);
    if count == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("count > 0");
    comp.iter()
        .enumerate()
        .filter(|&(_, &c)| c == best)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// Exact diameter: the longest geodesic among *reachable* pairs.
///
/// Runs one BFS per vertex (`O(V (V + E))`); intended for the modest graph
/// sizes of the evaluation (≤ a few thousand vertices). Returns 0 for graphs
/// with no edges.
pub fn diameter(graph: &Graph) -> u32 {
    let n = graph.num_vertices();
    let mut best = 0u32;
    let mut dist = Vec::new();
    for v in 0..n {
        bfs_distances_into(graph, v as VertexId, &mut dist);
        for &d in &dist {
            if d != UNREACHABLE {
                best = best.max(d);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 2);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = Graph::from_edges(4, [(0u32, 1u32)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn bfs_into_reuses_buffer() {
        let g = path_graph(4);
        let mut buf = vec![7u32; 99];
        bfs_distances_into(&g, 3, &mut buf);
        assert_eq!(buf, vec![3, 2, 1, 0]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (3, 4)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[5]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path_graph(4)));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
    }

    #[test]
    fn largest_component_finds_biggest() {
        let g = Graph::from_edges(7, [(0u32, 1u32), (2, 3), (3, 4), (4, 2), (5, 6)]).unwrap();
        assert_eq!(largest_component(&g), vec![2, 3, 4]);
    }

    #[test]
    fn diameter_of_paths_and_cycles() {
        assert_eq!(diameter(&path_graph(5)), 4);
        let cycle = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
            .unwrap();
        assert_eq!(diameter(&cycle), 3);
        assert_eq!(diameter(&Graph::new(3)), 0);
    }

    #[test]
    fn diameter_ignores_unreachable_pairs() {
        // Paper's definition: "the longest shortest path in a graph"; we take
        // the max over reachable pairs only so disconnected samples are not
        // reported as infinite.
        let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (3, 4)]).unwrap();
        assert_eq!(diameter(&g), 2);
    }
}
