//! Property-based tests for the graph substrate.

use lopacity_graph::traversal::{bfs_distances, connected_components, UNREACHABLE};
use lopacity_graph::{io, Edge, Graph, VertexId};
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `max_n` vertices, produced from
/// a set of candidate pairs (dedup handled by `add_edge`).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..(n * n / 2).max(1)).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn invariants_hold_after_random_construction(g in arb_graph(24)) {
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn degree_sum_is_twice_edge_count(g in arb_graph(24)) {
        prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
    }

    #[test]
    fn add_then_remove_is_identity(g in arb_graph(16), a in 0u32..16, b in 0u32..16) {
        let n = g.num_vertices() as u32;
        prop_assume!(a < n && b < n && a != b);
        prop_assume!(!g.has_edge(a, b));
        let mut h = g.clone();
        prop_assert!(h.add_edge(a, b));
        prop_assert!(h.remove_edge(a, b));
        prop_assert_eq!(h, g);
    }

    #[test]
    fn remove_then_add_is_identity(g in arb_graph(16)) {
        let edges = g.edge_vec();
        prop_assume!(!edges.is_empty());
        let e = edges[edges.len() / 2];
        let mut h = g.clone();
        prop_assert!(h.remove_edge(e.u(), e.v()));
        prop_assert!(h.add_edge(e.u(), e.v()));
        prop_assert_eq!(h, g);
    }

    #[test]
    fn edges_and_non_edges_partition_all_pairs(g in arb_graph(16)) {
        let n = g.num_vertices();
        let mut all: Vec<Edge> = g.edges().chain(g.non_edges()).collect();
        all.sort();
        let len = all.len();
        all.dedup();
        prop_assert_eq!(all.len(), len, "edges and non-edges overlap");
        prop_assert_eq!(len, n * (n - 1) / 2);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_on_edges(g in arb_graph(16)) {
        prop_assume!(g.num_vertices() > 0);
        let d = bfs_distances(&g, 0);
        for e in g.edges() {
            let (du, dv) = (d[e.u() as usize], d[e.v() as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "adjacent vertices differ by more than 1");
            } else {
                // Both endpoints of an edge are in the same component.
                prop_assert_eq!(du, dv);
            }
        }
    }

    #[test]
    fn components_agree_with_bfs_reachability(g in arb_graph(16)) {
        prop_assume!(g.num_vertices() > 0);
        let (comp, _) = connected_components(&g);
        let d = bfs_distances(&g, 0);
        for v in 0..g.num_vertices() {
            prop_assert_eq!(comp[v] == comp[0], d[v] != UNREACHABLE);
        }
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(16), keep in proptest::collection::vec(any::<bool>(), 16)) {
        let verts: Vec<VertexId> = (0..g.num_vertices())
            .filter(|&v| keep.get(v).copied().unwrap_or(false))
            .map(|v| v as VertexId)
            .collect();
        let (sub, mapping) = g.induced_subgraph(&verts);
        prop_assert!(sub.check_invariants().is_ok());
        for i in 0..sub.num_vertices() {
            for j in (i + 1)..sub.num_vertices() {
                let (oi, oj) = (mapping[i], mapping[j]);
                prop_assert_eq!(
                    sub.has_edge(i as VertexId, j as VertexId),
                    g.has_edge(oi, oj)
                );
            }
        }
    }

    #[test]
    fn edge_list_round_trip(g in arb_graph(16)) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list_with_header(buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }
}
