//! Head-to-head model comparison at matched edit budgets.
//!
//! The paper's claim is comparative: simpler anonymity notions leave
//! distance-based linkage on the table. [`run_comparison`] makes that
//! measurable. It runs every model — L-opacity removal, L-opacity
//! removal/insertion, degree-sequence k-anonymity, (k,ℓ)-adjacency
//! anonymity — on the *same* graph through *one* [`Anonymizer`] session
//! (shared evaluator builds, shared config plumbing), grants each the
//! same edge-edit budget, and scores every output twice over:
//!
//! * **utility** — the full [`UtilityReport`] against the original
//!   (distortion, degree/geodesic EMD, clustering, spectral);
//! * **cross-certification** — every output judged by every *notion*'s
//!   certifier, so the report answers "does the k-degree-anonymous output
//!   still leak under L-opacity at θ?" in one table.
//!
//! The budget is matched by construction: the unbudgeted L-opacity
//! removal run fixes it (or [`CompareSpec::with_budget`] overrides it),
//! and every other model runs under `AnonymizeConfig::max_edits` of that
//! value, so utility differences are attributable to the model rather
//! than to edit volume.
//!
//! Extra L values ([`CompareSpec::with_ls`]) add budget-matched L-opacity
//! reference rows via [`Anonymizer::l_sweep`] — the session's keyed build
//! cache shares each per-L evaluator build — and an `l-opacity@L=x`
//! certifier column per value, turning the table into a leakage-versus-L
//! curve for every rival model's output.

use crate::kdegree::KDegreeAnonymity;
use crate::kladjacency::KLAdjacencyAnonymity;
use lopacity::{
    AnonymizationOutcome, AnonymizeConfig, Anonymizer, LOpacity, PrivacyModel, Removal,
    StoreBackend, TypeSpec,
};
use lopacity_graph::Graph;
use lopacity_metrics::{CompareReport, CrossCell, ModelRow, UtilityReport};
use std::time::Instant;

/// Parameters of one comparison run.
#[derive(Debug, Clone)]
pub struct CompareSpec {
    /// Path-length threshold L for the L-opacity models.
    pub l: u8,
    /// Confidence threshold θ for the L-opacity models.
    pub theta: f64,
    /// Anonymity parameter k shared by k-degree and (k,ℓ)-adjacency.
    pub k: usize,
    /// Adversary subset bound ℓ for (k,ℓ)-adjacency (keep 1 beyond toy
    /// sizes: certification is O(|V|^ℓ)).
    pub ell: usize,
    /// Explicit edit budget; `None` derives it from the unbudgeted
    /// L-opacity removal run.
    pub budget: Option<usize>,
    /// Extra L values for the leakage sweep (values equal to `l` are
    /// ignored; empty = no sweep).
    pub ls: Vec<u8>,
    /// Tie-breaking seed for every run.
    pub seed: u64,
    /// Distance-store backend for the shared session.
    pub store: StoreBackend,
}

impl CompareSpec {
    /// A spec with no explicit budget, no L sweep, the default seed, and
    /// the adaptive store.
    pub fn new(l: u8, theta: f64, k: usize, ell: usize) -> Self {
        CompareSpec {
            l,
            theta,
            k,
            ell,
            budget: None,
            ls: Vec::new(),
            seed: lopacity::config::DEFAULT_SEED,
            store: StoreBackend::Auto,
        }
    }

    /// Overrides the derived edit budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Adds leakage-sweep L values.
    pub fn with_ls(mut self, ls: &[u8]) -> Self {
        self.ls = ls.to_vec();
        self
    }

    /// Sets the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the distance-store backend.
    pub fn with_store(mut self, store: StoreBackend) -> Self {
        self.store = store;
        self
    }
}

/// Scores `outcome` with every certifier column and assembles the row.
fn build_row(
    model: String,
    label: String,
    outcome: &AnonymizationOutcome,
    secs: f64,
    original: &Graph,
    certifiers: &[(String, Box<dyn PrivacyModel>)],
) -> ModelRow {
    let cells = certifiers
        .iter()
        .map(|(column, certifier)| CrossCell {
            certifier: column.clone(),
            certified: certifier.certify(&outcome.graph),
            violations: certifier.violations(&outcome.graph),
            leakage: certifier.leakage(&outcome.graph),
        })
        .collect();
    ModelRow {
        model,
        label,
        achieved: outcome.achieved,
        removed: outcome.removed.len(),
        inserted: outcome.inserted.len(),
        steps: outcome.steps,
        trials: outcome.trials,
        secs,
        utility: UtilityReport::compute(original, &outcome.graph),
        cells,
    }
}

/// Runs every model on `graph` at a matched edit budget and returns the
/// cross-model report (serialize with [`CompareReport::to_json`] /
/// [`CompareReport::csv_header`]). See the [module docs](self) for the
/// protocol.
pub fn run_comparison(graph: &Graph, spec: &CompareSpec) -> CompareReport {
    let types = TypeSpec::DegreePairs;
    let base = AnonymizeConfig::new(spec.l, spec.theta)
        .with_seed(spec.seed)
        .with_store(spec.store);
    let mut session = Anonymizer::new(graph, &types);
    session.set_config(base);

    // The unbudgeted L-opacity removal run fixes the matched budget.
    let start = Instant::now();
    let reference = session.run(Removal);
    let reference_secs = start.elapsed().as_secs_f64();
    let budget = spec.budget.unwrap_or_else(|| reference.edits()).max(1);
    let budgeted = base.with_max_edits(budget);

    let lop_rem =
        LOpacity::removal(types.clone(), spec.l, spec.theta).against_original(graph);
    let lop_ri =
        LOpacity::removal_insertion(types.clone(), spec.l, spec.theta).against_original(graph);
    let kdeg = KDegreeAnonymity::new(spec.k);
    let kladj = KLAdjacencyAnonymity::new(spec.k, spec.ell);

    // One certifier column per *notion* (both L-opacity strategies share
    // one), plus an L-opacity column per extra sweep L.
    let extra_ls: Vec<u8> = spec.ls.iter().copied().filter(|&lx| lx != spec.l).collect();
    let mut certifiers: Vec<(String, Box<dyn PrivacyModel>)> = vec![
        ("l-opacity".into(), Box::new(lop_rem.clone())),
        ("k-degree".into(), Box::new(kdeg.clone())),
        ("kl-adjacency".into(), Box::new(kladj.clone())),
    ];
    for &lx in &extra_ls {
        certifiers.push((
            format!("l-opacity@L={lx}"),
            Box::new(LOpacity::removal(types.clone(), lx, spec.theta).against_original(graph)),
        ));
    }

    let mut report = CompareReport {
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        budget,
        params: vec![
            ("l".into(), spec.l.to_string()),
            ("theta".into(), format!("{:.4}", spec.theta)),
            ("k".into(), spec.k.to_string()),
            ("ell".into(), spec.ell.to_string()),
            ("seed".into(), spec.seed.to_string()),
        ],
        certifiers: certifiers.iter().map(|(name, _)| name.clone()).collect(),
        rows: Vec::new(),
    };

    // Row 1: L-opacity removal — the reference run itself unless an
    // explicit budget demands a capped re-run.
    let (rem_outcome, rem_secs) = if spec.budget.is_some() {
        session.set_config(budgeted);
        let start = Instant::now();
        let outcome = session.run(lop_rem.repair_strategy());
        (outcome, start.elapsed().as_secs_f64())
    } else {
        (reference, reference_secs)
    };
    report.push_row(build_row(
        "l-opacity-rem".into(),
        lop_rem.label(),
        &rem_outcome,
        rem_secs,
        graph,
        &certifiers,
    ));

    // Rows 2–4: the rival models, all under the matched budget.
    session.set_config(budgeted);
    let rivals: [(&str, &dyn PrivacyModel); 3] =
        [("l-opacity-rem-ins", &lop_ri), ("k-degree", &kdeg), ("kl-adjacency", &kladj)];
    for (name, model) in rivals {
        let start = Instant::now();
        let outcome = session.run(model.repair_strategy());
        let secs = start.elapsed().as_secs_f64();
        report.push_row(build_row(
            name.into(),
            model.label(),
            &outcome,
            secs,
            graph,
            &certifiers,
        ));
    }

    // Sweep rows: budget-matched L-opacity removal at every extra L,
    // sharing per-L evaluator builds through the session cache.
    if !extra_ls.is_empty() {
        session.set_config(budgeted);
        for cell in session.l_sweep(&extra_ls, Removal) {
            report.push_row(build_row(
                format!("l-opacity-rem@L={}", cell.l),
                format!("l-opacity-rem(L={}, theta={:.2})", cell.l, spec.theta),
                &cell.outcome,
                cell.secs,
                graph,
                &certifiers,
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity_graph::VertexId;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn gnm(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        while g.num_edges() < m {
            let u = rng.random_range(0..n as VertexId);
            let v = rng.random_range(0..n as VertexId);
            if u != v {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn comparison_report_covers_all_models_and_is_rectangular() {
        let g = gnm(24, 48, 7);
        let spec = CompareSpec::new(2, 0.6, 3, 1).with_ls(&[1, 2]);
        let report = run_comparison(&g, &spec);

        let names: Vec<&str> = report.rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(
            &names[..4],
            &["l-opacity-rem", "l-opacity-rem-ins", "k-degree", "kl-adjacency"]
        );
        assert!(names.contains(&"l-opacity-rem@L=1"), "{names:?}");
        assert_eq!(report.certifiers, vec!["l-opacity", "k-degree", "kl-adjacency", "l-opacity@L=1"]);
        assert!(report.budget >= 1);

        // The reference model certifies under its own column; every rival
        // reports a leakage number under every notion.
        let rem = &report.rows[0];
        assert!(rem.achieved);
        assert!(rem.cells[0].certified, "reference must pass its own certifier");
        for row in &report.rows {
            assert_eq!(row.cells.len(), report.certifiers.len());
            for cell in &row.cells {
                assert!((0.0..=1.0).contains(&cell.leakage), "{}: {:?}", row.model, cell);
                assert_eq!(cell.certified, cell.violations == 0);
            }
        }

        // Matched budgets: the cap is enforced at step boundaries, so the
        // final removal/insertion step may overshoot by one edit at la=1.
        for row in &report.rows[1..] {
            assert!(
                row.removed + row.inserted <= report.budget + 1,
                "{} exceeded the budget",
                row.model
            );
        }

        // Serialization round-trips through the metrics builder.
        let json = report.to_json();
        assert!(json.contains("\"k-degree\""));
        let header = report.csv_header();
        for line in report.csv_rows() {
            assert_eq!(line.split(',').count(), header.split(',').count());
        }
    }

    #[test]
    fn explicit_budget_caps_the_reference_model_too() {
        let g = gnm(20, 40, 3);
        let spec = CompareSpec::new(1, 0.5, 2, 1).with_budget(2);
        let report = run_comparison(&g, &spec);
        assert_eq!(report.budget, 2);
        for row in &report.rows {
            assert!(row.removed + row.inserted <= 3, "{} exceeded", row.model);
        }
    }
}
