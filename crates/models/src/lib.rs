//! Rival graph-anonymity models behind the L-opacity session.
//!
//! The core crate anonymizes against *distance-based* linkage
//! (L-opacity). The literature it argues with anonymizes against
//! *structural* re-identification instead, and the paper's evaluation is
//! a head-to-head. This crate supplies the rivals as first-class
//! [`PrivacyModel`](lopacity::PrivacyModel)s — certifier, leakage score,
//! and a repair [`Strategy`](lopacity::Strategy) that runs through the
//! same [`Anonymizer`](lopacity::Anonymizer) session as the paper's own
//! algorithms — plus the harness that pits all of them against each
//! other at matched edit budgets.
//!
//! Module map:
//!
//! * [`kdegree`] — degree-sequence k-anonymity (Feder, Nabar & Terzi):
//!   every vertex shares its degree with ≥ k−1 others.
//! * [`kladjacency`] — (k,ℓ)-adjacency anonymity (Mauw, Trujillo-Rasua &
//!   Xuan): every adjacency pattern toward ≤ ℓ compromised accounts is
//!   shared by ≥ k vertices or by none.
//! * [`compare`] — [`run_comparison`]: one session, every model, matched
//!   budgets, every output scored by every certifier and by the full
//!   utility suite; feeds `COMPARE.json` / CSV via
//!   [`lopacity_metrics::CompareReport`].

pub mod compare;
pub mod kdegree;
pub mod kladjacency;

pub use compare::{run_comparison, CompareSpec};
pub use kdegree::{is_k_degree_anonymous, k_degree_violations, KDegreeAnonymity};
pub use kladjacency::{
    is_kl_adjacency_anonymous, kl_adjacency_leakage, kl_adjacency_violations, KLAdjacencyAnonymity,
};
