//! (k,ℓ)-adjacency anonymity (Mauw, Ramírez-Cruz & Trujillo-Rasua,
//! "Rethinking (k,ℓ)-anonymity in social graphs").
//!
//! The adversary controls up to ℓ sybil vertices and knows each target's
//! adjacency to them. A graph is **(k,ℓ)-adjacency anonymous** when for
//! every non-empty vertex subset `S` with `|S| ≤ ℓ`, every equivalence
//! class of `V ∖ S` under "same adjacency pattern toward S" is either
//! empty or has at least `k` members — no pattern pins a target below k
//! candidates.
//!
//! At ℓ = 1 the condition collapses to a **degree band**: for `S = {u}`
//! the two classes are u's neighbors (size `deg(u)`) and non-neighbors
//! (size `n − 1 − deg(u)`), so the graph is (k,1)-anonymous iff every
//! degree lies in `{0} ∪ [k, n−1−k] ∪ {n−1}` (with the obvious boundary
//! cases for tiny n). That makes an insertion-only, provably terminating
//! repair possible, and it is the fast path [`KLAdjacencyAnonymity`]
//! uses; the general certifier enumerates all subsets and is exercised
//! against the band characterization in the tests. For ℓ ≥ 2 the repair
//! falls back to a greedy loop that inserts the absent edge minimizing
//! the violation count (ties lexicographic) — each step adds one edge, so
//! it terminates at the complete graph, which certifies iff
//! `n ≥ k + ℓ`.

use lopacity::{MoveKind, PrivacyModel, RunContext, Strategy};
use lopacity_graph::{Graph, VertexId};
use std::collections::HashMap;

/// Number of "insufficiently hidden" vertices summed over all adversary
/// subsets: for every non-empty `S`, `|S| ≤ ell`, every member of an
/// adjacency-pattern class with `0 < size < k` counts once
/// (0 ⇔ [`is_kl_adjacency_anonymous`]). `k <= 1` never violates.
pub fn kl_adjacency_violations(graph: &Graph, k: usize, ell: usize) -> u64 {
    subset_stats(graph, k, ell).0
}

/// Whether the graph is (k,ℓ)-adjacency anonymous.
pub fn is_kl_adjacency_anonymous(graph: &Graph, k: usize, ell: usize) -> bool {
    kl_adjacency_violations(graph, k, ell) == 0
}

/// Fraction of adversary subsets (non-empty, `|S| ≤ ell`) that expose at
/// least one undersized pattern class — the model's leakage score in
/// `[0, 1]`.
pub fn kl_adjacency_leakage(graph: &Graph, k: usize, ell: usize) -> f64 {
    let (_, violating_subsets, total_subsets) = subset_stats_full(graph, k, ell);
    if total_subsets == 0 {
        return 0.0;
    }
    violating_subsets as f64 / total_subsets as f64
}

fn subset_stats(graph: &Graph, k: usize, ell: usize) -> (u64, u64) {
    let (violations, violating_subsets, _) = subset_stats_full(graph, k, ell);
    (violations, violating_subsets)
}

/// `(violating members, violating subsets, total subsets)` over every
/// non-empty `S` with `|S| ≤ ell`. ℓ = 1 uses the degree-band closed
/// form (O(|V|) after degrees); larger ℓ enumerates subsets.
fn subset_stats_full(graph: &Graph, k: usize, ell: usize) -> (u64, u64, u64) {
    assert!(ell <= 64, "adjacency patterns are tracked as 64-bit masks");
    let n = graph.num_vertices();
    if k <= 1 || n == 0 || ell == 0 {
        let mut total = 0u64;
        let mut choose = 1u64;
        for s in 1..=ell.min(n) {
            choose = choose * (n as u64 - s as u64 + 1) / s as u64;
            total += choose;
        }
        return (0, 0, total);
    }
    let mut violations = 0u64;
    let mut violating_subsets = 0u64;
    let mut total_subsets = 0u64;
    // ℓ = 1 closed form: for S = {u} the classes are neighbors (deg u)
    // and non-neighbors (n − 1 − deg u).
    for u in 0..n {
        total_subsets += 1;
        let deg = graph.degree(u as VertexId);
        let co = n - 1 - deg;
        let mut here = 0u64;
        if deg > 0 && deg < k {
            here += deg as u64;
        }
        if co > 0 && co < k {
            here += co as u64;
        }
        violations += here;
        violating_subsets += (here > 0) as u64;
    }
    // ℓ ≥ 2: enumerate subsets and bucket V∖S by adjacency bitmask.
    let mut subset: Vec<usize> = Vec::with_capacity(ell);
    if ell >= 2 && n >= 2 {
        enumerate_subsets(n, 2, ell.min(n), &mut subset, &mut |s| {
            total_subsets += 1;
            let mut classes: HashMap<u64, u64> = HashMap::new();
            'vertex: for v in 0..n {
                let mut mask = 0u64;
                for (bit, &u) in s.iter().enumerate() {
                    if u == v {
                        continue 'vertex;
                    }
                    if graph.has_edge(v as VertexId, u as VertexId) {
                        mask |= 1 << bit;
                    }
                }
                *classes.entry(mask).or_default() += 1;
            }
            let here: u64 = classes.values().filter(|&&c| c < k as u64).sum();
            violations += here;
            violating_subsets += (here > 0) as u64;
        });
    }
    (violations, violating_subsets, total_subsets)
}

/// Calls `visit` for every subset of `{0..n}` with size in `[min, max]`,
/// in lexicographic order.
fn enumerate_subsets(
    n: usize,
    min: usize,
    max: usize,
    subset: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if subset.len() >= min {
        visit(subset);
    }
    if subset.len() == max {
        return;
    }
    let start = subset.last().map_or(0, |&last| last + 1);
    for v in start..n {
        subset.push(v);
        enumerate_subsets(n, min, max, subset, visit);
        subset.pop();
    }
}

/// Whether degree `d` is allowed under the (k,1) band
/// `{0} ∪ [k, n−1−k] ∪ {n−1}` (boundary cases: an empty co-class or
/// neighbor class is always fine).
fn band_allowed(d: usize, n: usize, k: usize) -> bool {
    let others = n - 1;
    let neighbors_ok = d == 0 || d >= k;
    let co_ok = d == others || others - d >= k;
    neighbors_ok && co_ok
}

/// (k,ℓ)-adjacency anonymity as a [`PrivacyModel`] and session
/// [`Strategy`] (see the [module docs](self) for both repair modes).
#[derive(Debug, Clone)]
pub struct KLAdjacencyAnonymity {
    k: usize,
    ell: usize,
}

impl KLAdjacencyAnonymity {
    /// Repair toward (k,ℓ)-adjacency anonymity.
    ///
    /// # Panics
    /// Panics when `k` or `ell` is 0, or `ell > 64` (adjacency patterns
    /// are tracked as 64-bit masks; real adversaries control few sybils).
    pub fn new(k: usize, ell: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!((1..=64).contains(&ell), "ell must be in 1..=64");
        KLAdjacencyAnonymity { k, ell }
    }

    /// The anonymity parameter k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The adversary subset bound ℓ.
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// Insertion-only ℓ = 1 repair via the degree band: raise each
    /// offending vertex's degree to the band floor (or to `n − 1` when
    /// the band is empty), preferring partners that are themselves
    /// violating, then partners whose degree stays allowed.
    fn repair_band(&self, ctx: &mut RunContext<'_>) {
        let k = self.k;
        loop {
            let n = ctx.evaluator().graph().num_vertices();
            let offender = {
                let graph = ctx.evaluator().graph();
                (0..n).find(|&v| !band_allowed(graph.degree(v as VertexId), n, k))
            };
            let u = match offender {
                Some(u) => u,
                None => {
                    ctx.declare_achieved(true);
                    return;
                }
            };
            if ctx.interrupted() {
                ctx.declare_achieved(false);
                return;
            }
            ctx.add_trials(1);
            let partner = {
                let graph = ctx.evaluator().graph();
                let free = |w: usize| w != u && !graph.has_edge(u as VertexId, w as VertexId);
                (0..n)
                    .find(|&w| free(w) && !band_allowed(graph.degree(w as VertexId), n, k))
                    .or_else(|| {
                        (0..n).find(|&w| {
                            free(w) && band_allowed(graph.degree(w as VertexId) + 1, n, k)
                        })
                    })
                    .or_else(|| (0..n).find(|&w| free(w)))
            };
            match partner {
                Some(w) => {
                    ctx.commit(
                        MoveKind::Insert,
                        &[lopacity_graph::Edge::new(u as VertexId, w as VertexId)],
                    );
                    ctx.step_committed();
                }
                None => {
                    // u is adjacent to everyone, yet still violating — its
                    // neighbor class is n − 1 < k. Insertion elsewhere
                    // cannot change u's classes; the notion is infeasible.
                    ctx.declare_achieved(false);
                    return;
                }
            }
        }
    }

    /// General ℓ ≥ 2 repair: greedily insert the absent edge minimizing
    /// the violation count (ties lexicographic). Certifier-complete but
    /// O(|V|^ℓ) per evaluation — intended for the small graphs where a
    /// multi-sybil adversary is actually analyzable.
    fn repair_greedy(&self, ctx: &mut RunContext<'_>) {
        let (k, ell) = (self.k, self.ell);
        loop {
            if is_kl_adjacency_anonymous(ctx.evaluator().graph(), k, ell) {
                ctx.declare_achieved(true);
                return;
            }
            if ctx.interrupted() {
                ctx.declare_achieved(false);
                return;
            }
            let best = {
                let graph = ctx.evaluator().graph();
                let mut best = None;
                let mut trials = 0u64;
                for e in graph.non_edges() {
                    let mut candidate = graph.clone();
                    candidate.add_edge(e.u(), e.v());
                    let value = kl_adjacency_violations(&candidate, k, ell);
                    trials += 1;
                    // Lexicographic enumeration + strict improvement keeps
                    // the first (smallest) edge among ties.
                    if best.map_or(true, |(b, _)| value < b) {
                        best = Some((value, e));
                    }
                }
                ctx.add_trials(trials);
                best.map(|(_, e)| e)
            };
            match best {
                Some(e) => {
                    ctx.commit(MoveKind::Insert, &[e]);
                    ctx.step_committed();
                }
                None => {
                    // Complete graph and still violating: infeasible
                    // (n < k + ℓ).
                    ctx.declare_achieved(false);
                    return;
                }
            }
        }
    }
}

impl Strategy for KLAdjacencyAnonymity {
    fn name(&self) -> &'static str {
        "kl-adjacency"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        if self.k <= 1 {
            ctx.declare_achieved(true);
            return;
        }
        if self.ell == 1 {
            self.repair_band(ctx);
        } else {
            self.repair_greedy(ctx);
        }
    }
}

impl PrivacyModel for KLAdjacencyAnonymity {
    fn name(&self) -> &'static str {
        "kl-adjacency"
    }

    fn label(&self) -> String {
        format!("kl-adjacency(k={}, ell={})", self.k, self.ell)
    }

    fn violations(&self, graph: &Graph) -> u64 {
        kl_adjacency_violations(graph, self.k, self.ell)
    }

    fn leakage(&self, graph: &Graph) -> f64 {
        kl_adjacency_leakage(graph, self.k, self.ell)
    }

    fn repair_strategy(&self) -> Box<dyn Strategy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity::{AnonymizeConfig, Anonymizer, TypeSpec};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(
            n,
            (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)),
        )
        .unwrap()
    }

    fn gnm(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        while g.num_edges() < m {
            let u = rng.random_range(0..n as VertexId);
            let v = rng.random_range(0..n as VertexId);
            if u != v {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The ℓ = 1 degree-band characterization must agree with the general
    /// subset enumerator on random graphs (the enumerator at ℓ = 1 *is*
    /// the closed form here, so compare against a naive recount).
    #[test]
    fn band_matches_naive_subset_count_at_ell_1() {
        for seed in 0..8 {
            let g = gnm(9, 12, seed);
            let n = g.num_vertices();
            for k in 2..=4 {
                let mut naive = 0u64;
                for u in 0..n {
                    let deg = g.degree(u as VertexId);
                    let co = n - 1 - deg;
                    for class in [deg, co] {
                        if class > 0 && class < k {
                            naive += class as u64;
                        }
                    }
                }
                assert_eq!(kl_adjacency_violations(&g, k, 1), naive, "seed {seed} k {k}");
                let banded = (0..n).all(|v| band_allowed(g.degree(v as VertexId), n, k));
                assert_eq!(is_kl_adjacency_anonymous(&g, k, 1), banded, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn complete_graph_certifies_iff_n_at_least_k_plus_ell() {
        let complete = |n: usize| {
            let mut g = Graph::new(n);
            for u in 0..n as VertexId {
                for v in (u + 1)..n as VertexId {
                    g.add_edge(u, v);
                }
            }
            g
        };
        for (n, k, ell, want) in
            [(6, 3, 2, true), (5, 3, 2, true), (4, 3, 2, false), (5, 4, 1, true), (4, 4, 1, false)]
        {
            assert_eq!(
                is_kl_adjacency_anonymous(&complete(n), k, ell),
                want,
                "n={n} k={k} ell={ell}"
            );
        }
    }

    #[test]
    fn cycles_pass_at_ell_1_but_fail_at_ell_2() {
        // C6: every degree is 2 = k, co-degree 3 >= k.
        assert!(is_kl_adjacency_anonymous(&cycle(6), 2, 1));
        // But an adjacent sybil pair {u, v} in a cycle pins the outer
        // neighbor of u (pattern "adjacent to u only") alone in its
        // class, so no cycle is (2,2)-anonymous.
        assert!(!is_kl_adjacency_anonymous(&cycle(7), 2, 2));
    }

    #[test]
    fn star_hub_is_exposed() {
        let g = Graph::from_edges(5, [(0u32, 1u32), (0, 2), (0, 3), (0, 4)]).unwrap();
        // Leaves have degree 1 < 2: their neighbor class {hub} has size 1.
        assert!(!is_kl_adjacency_anonymous(&g, 2, 1));
        assert!(kl_adjacency_leakage(&g, 2, 1) > 0.0);
        assert_eq!(kl_adjacency_leakage(&g, 1, 1), 0.0, "k = 1 never leaks");
    }

    #[test]
    fn band_repair_certifies_through_the_session() {
        let g = Graph::from_edges(8, [(0u32, 1u32), (0, 2), (0, 3), (0, 4), (5, 6)]).unwrap();
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
        let out = session.run(KLAdjacencyAnonymity::new(2, 1));
        assert!(out.achieved, "{out}");
        assert!(out.removed.is_empty(), "band repair is insertion-only");
        assert!(is_kl_adjacency_anonymous(&out.graph, 2, 1));
    }

    #[test]
    fn greedy_repair_certifies_at_ell_2() {
        let g = Graph::from_edges(7, [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])
            .unwrap();
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
        let out = session.run(KLAdjacencyAnonymity::new(2, 2));
        assert!(out.achieved, "{out}");
        assert!(is_kl_adjacency_anonymous(&out.graph, 2, 2));
        assert!(out.trials > 0, "greedy candidate scans reach the trial clock");
    }

    #[test]
    fn infeasible_instance_concedes() {
        // n = 3 < k + ell = 4: nothing certifies.
        let g = Graph::from_edges(3, [(0u32, 1u32)]).unwrap();
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
        let out = session.run(KLAdjacencyAnonymity::new(3, 1));
        assert!(!out.achieved);
    }

    #[test]
    fn model_surface_is_consistent() {
        let model = KLAdjacencyAnonymity::new(2, 1);
        assert_eq!(model.label(), "kl-adjacency(k=2, ell=1)");
        assert!(model.certify(&cycle(6)));
        let star = Graph::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)]).unwrap();
        assert!(!model.certify(&star));
        assert!(model.violations(&star) > 0);
        assert!(model.leakage(&star) > 0.0 && model.leakage(&star) <= 1.0);
    }
}
