//! Degree-sequence k-anonymity (Feder, Nabar & Terzi, "Anonymizing
//! Graphs").
//!
//! A graph is **k-degree anonymous** when every vertex shares its degree
//! with at least `k − 1` others — the adversary who knows a target's
//! degree cannot narrow it below k candidates. The classic construction
//! has two halves: *degree-sequence anonymization* (pick a k-anonymous
//! target sequence close to the current one) and *realization* (edit edges
//! until the graph meets the targets). [`KDegreeAnonymity`] implements
//! both as a session [`Strategy`]:
//!
//! * **Grouping** — vertices sorted by descending degree are cut into
//!   consecutive groups of `k` (the tail group absorbs up to `2k − 1`),
//!   and each group's target is its maximum degree, so every deficit is
//!   non-negative and insertion-only realization suffices.
//! * **Realization** — repeatedly connect the two non-adjacent vertices
//!   with the largest remaining deficits (ties to the smaller id). When a
//!   deficit vertex is adjacent to every other deficit vertex, it borrows
//!   the smallest-id non-neighbor instead and the next round regroups
//!   from the updated degrees.
//!
//! Every round either certifies, returns on an exhausted budget, or
//! inserts at least one edge — and the complete graph is regular (hence
//! k-degree anonymous for every `k ≤ |V|`), so the repair terminates.
//! All decisions read only the working graph (never distances or the run
//! RNG), which is why repairs are bit-for-bit identical across store
//! backends and worker counts.

use lopacity::{MoveKind, PrivacyModel, RunContext, Strategy};
use lopacity_graph::{Edge, Graph, VertexId};

/// Number of vertices whose degree class has fewer than `k` members
/// (0 ⇔ [`is_k_degree_anonymous`]). `k <= 1` never violates.
pub fn k_degree_violations(graph: &Graph, k: usize) -> u64 {
    if k <= 1 {
        return 0;
    }
    let n = graph.num_vertices();
    let mut class_sizes = vec![0u64; n.max(1)];
    for v in 0..n {
        class_sizes[graph.degree(v as VertexId)] += 1;
    }
    class_sizes.iter().filter(|&&c| c > 0 && c < k as u64).sum()
}

/// Whether every vertex shares its degree with at least `k − 1` others.
pub fn is_k_degree_anonymous(graph: &Graph, k: usize) -> bool {
    k_degree_violations(graph, k) == 0
}

/// Greedy degree-sequence anonymization: descending-degree order, groups
/// of `k` (tail group up to `2k − 1`), target = group maximum. Returns
/// each vertex's target degree; targets never undershoot current degrees.
fn degree_targets(graph: &Graph, k: usize) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let mut targets = vec![0usize; n];
    let mut i = 0;
    while i < n {
        let remaining = n - i;
        let take = if remaining >= 2 * k { k } else { remaining };
        let target = graph.degree(order[i]);
        for &v in &order[i..i + take] {
            targets[v as usize] = target;
        }
        i += take;
    }
    targets
}

/// Degree-sequence k-anonymity as a [`PrivacyModel`] and session
/// [`Strategy`] (see the [module docs](self) for the algorithm).
#[derive(Debug, Clone)]
pub struct KDegreeAnonymity {
    k: usize,
}

impl KDegreeAnonymity {
    /// Repair toward k-anonymous degrees.
    ///
    /// # Panics
    /// Panics when `k` is 0 (no adversary model corresponds to it).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KDegreeAnonymity { k }
    }

    /// The anonymity parameter k.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Strategy for KDegreeAnonymity {
    fn name(&self) -> &'static str {
        "k-degree"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        let k = self.k;
        loop {
            if is_k_degree_anonymous(ctx.evaluator().graph(), k) {
                ctx.declare_achieved(true);
                return;
            }
            if ctx.interrupted() {
                ctx.declare_achieved(false);
                return;
            }
            let n = ctx.evaluator().graph().num_vertices();
            let targets = degree_targets(ctx.evaluator().graph(), k);
            let mut deficit: Vec<usize> = (0..n)
                .map(|v| targets[v] - ctx.evaluator().graph().degree(v as VertexId))
                .collect();
            let mut committed_this_round = 0usize;
            loop {
                if ctx.interrupted() {
                    ctx.declare_achieved(is_k_degree_anonymous(ctx.evaluator().graph(), k));
                    return;
                }
                // Largest remaining deficit, ties to the smaller id.
                let u = match (0..n)
                    .filter(|&v| deficit[v] > 0)
                    .max_by_key(|&v| (deficit[v], std::cmp::Reverse(v)))
                {
                    Some(u) => u,
                    None => break,
                };
                ctx.add_trials(1);
                // Preferred partner: another deficit vertex (mutual
                // progress); fallback: any non-neighbor (regrouped next
                // round); neither: u is saturated, skip it this round.
                let partner = {
                    let graph = ctx.evaluator().graph();
                    (0..n)
                        .filter(|&w| {
                            w != u
                                && deficit[w] > 0
                                && !graph.has_edge(u as VertexId, w as VertexId)
                        })
                        .max_by_key(|&w| (deficit[w], std::cmp::Reverse(w)))
                        .or_else(|| {
                            (0..n).find(|&w| {
                                w != u && !graph.has_edge(u as VertexId, w as VertexId)
                            })
                        })
                };
                match partner {
                    Some(w) => {
                        ctx.commit(MoveKind::Insert, &[Edge::new(u as VertexId, w as VertexId)]);
                        ctx.step_committed();
                        deficit[u] -= 1;
                        deficit[w] = deficit[w].saturating_sub(1);
                        committed_this_round += 1;
                    }
                    None => deficit[u] = 0,
                }
            }
            if committed_this_round == 0 {
                // Stalled round: force progress with the smallest absent
                // edge, or concede on the complete graph (regular, so if
                // it still violates — k > |V| — no graph can certify).
                let forced = ctx.evaluator().graph().non_edges().next();
                match forced {
                    Some(e) => {
                        ctx.commit(MoveKind::Insert, &[e]);
                        ctx.step_committed();
                    }
                    None => {
                        ctx.declare_achieved(is_k_degree_anonymous(
                            ctx.evaluator().graph(),
                            k,
                        ));
                        return;
                    }
                }
            }
        }
    }
}

impl PrivacyModel for KDegreeAnonymity {
    fn name(&self) -> &'static str {
        "k-degree"
    }

    fn label(&self) -> String {
        format!("k-degree(k={})", self.k)
    }

    fn violations(&self, graph: &Graph) -> u64 {
        k_degree_violations(graph, self.k)
    }

    fn leakage(&self, graph: &Graph) -> f64 {
        let n = graph.num_vertices();
        if n == 0 {
            return 0.0;
        }
        self.violations(graph) as f64 / n as f64
    }

    fn repair_strategy(&self) -> Box<dyn Strategy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity::{AnonymizeConfig, Anonymizer, TypeSpec};

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(
            n,
            (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)),
        )
        .unwrap()
    }

    fn star(leaves: usize) -> Graph {
        Graph::from_edges(leaves + 1, (1..=leaves).map(|i| (0u32, i as VertexId))).unwrap()
    }

    #[test]
    fn certifier_on_known_shapes() {
        // A cycle is regular: one degree class of size n.
        for k in 1..=6 {
            assert!(is_k_degree_anonymous(&cycle(6), k), "k = {k}");
        }
        assert!(!is_k_degree_anonymous(&cycle(6), 7));
        // A star's hub is alone in its degree class.
        let s = star(4);
        assert!(is_k_degree_anonymous(&s, 1));
        assert!(!is_k_degree_anonymous(&s, 2));
        assert_eq!(k_degree_violations(&s, 2), 1, "only the hub violates");
        assert_eq!(k_degree_violations(&s, 5), 5, "all five vertices violate");
        // Empty graphs are vacuously anonymous.
        assert!(is_k_degree_anonymous(&Graph::new(0), 3));
    }

    #[test]
    fn targets_never_undershoot_and_group_at_least_k() {
        let g = star(5);
        let targets = degree_targets(&g, 2);
        for v in 0..g.num_vertices() {
            assert!(targets[v] >= g.degree(v as VertexId), "vertex {v}");
        }
        // Each distinct target must cover >= k vertices.
        let mut by_target = std::collections::HashMap::new();
        for &t in &targets {
            *by_target.entry(t).or_insert(0usize) += 1;
        }
        assert!(by_target.values().all(|&c| c >= 2), "{targets:?}");
    }

    #[test]
    fn repair_certifies_and_is_insertion_only() {
        let g = star(6);
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
        let out = session.run(KDegreeAnonymity::new(3));
        assert!(out.achieved, "{out}");
        assert!(out.removed.is_empty(), "repair is insertion-only");
        assert!(!out.inserted.is_empty(), "the star violates, so edits are needed");
        assert!(is_k_degree_anonymous(&out.graph, 3));
        // The session's θ verdict was overridden by the model's certifier.
        assert_eq!(out.steps, out.inserted.len());
    }

    #[test]
    fn infeasible_k_concedes_with_a_complete_graph() {
        let g = star(2); // 3 vertices: k = 5 is unreachable
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(1, 0.5));
        let out = session.run(KDegreeAnonymity::new(5));
        assert!(!out.achieved);
        assert_eq!(out.graph.num_edges(), 3, "repair drove to the complete graph");
    }

    #[test]
    fn budgeted_repair_stops_uncertified() {
        let g = star(6);
        let spec = TypeSpec::DegreePairs;
        let mut session = Anonymizer::new(&g, &spec)
            .config(AnonymizeConfig::new(1, 0.5).with_max_edits(1));
        let out = session.run(KDegreeAnonymity::new(3));
        assert!(!out.achieved, "budget cannot reach anonymity");
        assert_eq!(out.edits(), 1);
    }

    #[test]
    fn model_surface_is_consistent() {
        let model = KDegreeAnonymity::new(2);
        assert_eq!(model.label(), "k-degree(k=2)");
        let s = star(4);
        assert!(!model.certify(&s));
        assert_eq!(model.violations(&s), 1);
        assert!((model.leakage(&s) - 0.2).abs() < 1e-12);
        assert!(model.certify(&cycle(5)));
        assert_eq!(model.leakage(&cycle(5)), 0.0);
    }
}
