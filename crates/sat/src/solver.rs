//! Reference 3-SAT solving by exhaustive enumeration (instances in this
//! workspace stay below ~20 variables; the point is ground truth, not
//! performance).

use crate::cnf::Cnf3;

/// Returns a satisfying assignment, or `None` when unsatisfiable.
///
/// # Panics
/// Panics for more than 24 variables (2^24 assignments is the sanity cap).
pub fn brute_force_sat(cnf: &Cnf3) -> Option<Vec<bool>> {
    assert!(cnf.num_vars <= 24, "brute force capped at 24 variables");
    let mut assignment = vec![false; cnf.num_vars];
    for bits in 0u64..(1u64 << cnf.num_vars) {
        for (i, slot) in assignment.iter_mut().enumerate() {
            *slot = bits >> i & 1 == 1;
        }
        if cnf.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

/// Counts satisfying assignments (for test diagnostics).
pub fn count_solutions(cnf: &Cnf3) -> u64 {
    assert!(cnf.num_vars <= 24, "brute force capped at 24 variables");
    let mut assignment = vec![false; cnf.num_vars];
    let mut count = 0;
    for bits in 0u64..(1u64 << cnf.num_vars) {
        for (i, slot) in assignment.iter_mut().enumerate() {
            *slot = bits >> i & 1 == 1;
        }
        if cnf.eval(&assignment) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};

    #[test]
    fn solves_the_paper_example() {
        let cnf = Cnf3::paper_example();
        let solution = brute_force_sat(&cnf).expect("example is satisfiable");
        assert!(cnf.eval(&solution));
        assert!(count_solutions(&cnf) >= 1);
    }

    #[test]
    fn detects_unsatisfiable_instances() {
        // All eight sign patterns over three variables: unsatisfiable.
        let mut clauses = Vec::new();
        for bits in 0..8u32 {
            clauses.push(Clause([
                Literal { var: 0, positive: bits & 1 == 0 },
                Literal { var: 1, positive: bits & 2 == 0 },
                Literal { var: 2, positive: bits & 4 == 0 },
            ]));
        }
        let cnf = Cnf3::new(3, clauses);
        assert!(brute_force_sat(&cnf).is_none());
        assert_eq!(count_solutions(&cnf), 0);
    }

    #[test]
    fn trivial_instance_counts_all_assignments() {
        // One clause over three variables excludes exactly one of 8 patterns.
        let cnf = Cnf3::new(
            3,
            vec![Clause([Literal::pos(0), Literal::pos(1), Literal::pos(2)])],
        );
        assert_eq!(count_solutions(&cnf), 7);
    }
}
