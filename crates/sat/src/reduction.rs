//! The Theorem 1 construction: 3-SAT instance → L-opacification instance.

use crate::cnf::Cnf3;
use lopacity::{opacity, TypeSpec};
use lopacity_graph::{Edge, Graph, VertexId};

/// The path-length threshold of the reduction (clause pairs sit at distance
/// exactly 3 through their variable edge).
pub const REDUCTION_L: u8 = 3;

/// The confidence threshold of the reduction.
///
/// The paper states the decision problem with "θ = 1" under Definition 3's
/// *strict* inequality (`maxLO < θ`). Algorithms 4/5 use the inclusive form
/// (`maxLO ≤ θ`), under which the equivalent threshold is the largest
/// attainable value below 1 for the construction's types: variable types
/// have 2 pairs (values 0, 1/2, 1) and clause types 3 pairs (0, 1/3, 2/3,
/// 1), so `θ = 2/3` demands at least one broken pair per type — exactly the
/// strict-θ=1 requirement.
pub const REDUCTION_THETA: f64 = 2.0 / 3.0;

/// The reduction graph plus its explicit vertex-pair types and the
/// edge ↔ literal correspondence.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The constructed graph.
    pub graph: Graph,
    /// Explicit types: first `num_vars` variable types `(A_v, B_v)`, then
    /// one clause type `(A_k, B_k)` per clause.
    pub spec: TypeSpec,
    /// Per variable: `(positive edge (v_i, v_j), negative edge (v'_i, v'_j))`.
    pub var_edges: Vec<(Edge, Edge)>,
    /// Number of variables `N` (the removal budget of the decision problem).
    pub num_vars: usize,
    /// Number of clauses `S`.
    pub num_clauses: usize,
}

impl Reduction {
    /// Builds the construction of Theorem 1 for `cnf`.
    ///
    /// Layout: variable `v` owns vertices `4v .. 4v+3` (`v_i, v_j, v'_i,
    /// v'_j`); every literal occurrence appends a fresh `(A_k, B_k)` pendant
    /// pair after the variable block.
    pub fn build(cnf: &Cnf3) -> Self {
        let n_var_vertices = 4 * cnf.num_vars;
        let n_clause_vertices = 2 * cnf.clauses.iter().map(|c| c.0.len()).sum::<usize>();
        let mut graph = Graph::new(n_var_vertices + n_clause_vertices);

        let mut var_edges = Vec::with_capacity(cnf.num_vars);
        let mut type_lists: Vec<Vec<(VertexId, VertexId)>> =
            Vec::with_capacity(cnf.num_vars + cnf.clauses.len());
        for v in 0..cnf.num_vars {
            let base = (4 * v) as VertexId;
            let pos = Edge::new(base, base + 1);
            let neg = Edge::new(base + 2, base + 3);
            graph.add_edge(pos.u(), pos.v());
            graph.add_edge(neg.u(), neg.v());
            var_edges.push((pos, neg));
            type_lists.push(vec![pos.endpoints(), neg.endpoints()]);
        }

        let mut next_vertex = n_var_vertices as VertexId;
        for clause in &cnf.clauses {
            let mut clause_pairs = Vec::with_capacity(clause.0.len());
            for lit in &clause.0 {
                let (edge, _) = var_edges[lit.var];
                let (vi, vj) = if lit.positive {
                    edge.endpoints()
                } else {
                    var_edges[lit.var].1.endpoints()
                };
                let a_k = next_vertex;
                let b_k = next_vertex + 1;
                next_vertex += 2;
                graph.add_edge(a_k, vi);
                graph.add_edge(b_k, vj);
                clause_pairs.push((a_k, b_k));
            }
            type_lists.push(clause_pairs);
        }
        debug_assert_eq!(next_vertex as usize, graph.num_vertices());

        Reduction {
            graph,
            spec: TypeSpec::Explicit(type_lists),
            var_edges,
            num_vars: cnf.num_vars,
            num_clauses: cnf.clauses.len(),
        }
    }

    /// The edge removals corresponding to a truth assignment: removing the
    /// positive edge sets the variable true, removing the negative edge
    /// sets it false (Theorem 1's encoding).
    pub fn removals_for_assignment(&self, assignment: &[bool]) -> Vec<Edge> {
        assert_eq!(assignment.len(), self.num_vars, "assignment length mismatch");
        assignment
            .iter()
            .zip(&self.var_edges)
            .map(|(&value, &(pos, neg))| if value { pos } else { neg })
            .collect()
    }

    /// Whether removing exactly `removals` leaves the construction opaque
    /// (every type `maxLO ≤ 2/3` at `L = 3`).
    pub fn is_opaque_after(&self, removals: &[Edge]) -> bool {
        let mut g = self.graph.clone();
        for e in removals {
            assert!(g.remove_edge(e.u(), e.v()), "removal {e} is not an edge");
        }
        let report = opacity::opacity_report(&g, &self.spec, REDUCTION_L);
        report.max_lo.satisfies(REDUCTION_THETA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf3;

    #[test]
    fn paper_example_dimensions_match_figure_3() {
        let cnf = Cnf3::paper_example();
        let red = Reduction::build(&cnf);
        // 4 variables × 4 vertices + 6 clauses × 3 literals × 2 vertices.
        assert_eq!(red.graph.num_vertices(), 16 + 36);
        // 2 edges per variable + 2 edges per literal occurrence.
        assert_eq!(red.graph.num_edges(), 8 + 36);
        assert_eq!(red.num_vars, 4);
        assert_eq!(red.num_clauses, 6);
        red.graph.check_invariants().unwrap();
    }

    #[test]
    fn clause_pairs_sit_at_distance_three_through_their_edge() {
        let cnf = Cnf3::paper_example();
        let red = Reduction::build(&cnf);
        let report = opacity::opacity_report(&red.graph, &red.spec, REDUCTION_L);
        // Before any removal every pair is within 3: all types at LO = 1.
        assert_eq!(report.max_lo.as_f64(), 1.0);
        for row in &report.per_type {
            assert_eq!(row.within_l, row.total, "type {}", row.label);
        }
    }

    #[test]
    fn satisfying_assignment_yields_opacity() {
        let cnf = Cnf3::paper_example();
        let red = Reduction::build(&cnf);
        let assignment = [true, true, true, true];
        assert!(cnf.eval(&assignment));
        let removals = red.removals_for_assignment(&assignment);
        assert_eq!(removals.len(), red.num_vars);
        assert!(red.is_opaque_after(&removals));
    }

    #[test]
    fn falsifying_assignment_leaves_a_saturated_clause_type() {
        let cnf = Cnf3::paper_example();
        let red = Reduction::build(&cnf);
        // a=F, b=T, c=F, d=F falsifies clause 4 = (a ∨ ¬b ∨ ¬c)? a=F, ¬b=F,
        // ¬c=T -> satisfied. Find a falsifying assignment by search instead.
        let mut falsifying = None;
        for bits in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            if !cnf.eval(&assignment) {
                falsifying = Some(assignment);
                break;
            }
        }
        let assignment = falsifying.expect("the example is not a tautology");
        let removals = red.removals_for_assignment(&assignment);
        assert!(!red.is_opaque_after(&removals));
    }

    #[test]
    fn variable_edge_removal_breaks_only_its_side() {
        let cnf = Cnf3::paper_example();
        let red = Reduction::build(&cnf);
        let (pos, neg) = red.var_edges[0];
        let mut g = red.graph.clone();
        g.remove_edge(pos.u(), pos.v());
        // The negative edge still links its pair.
        assert!(g.has_edge(neg.u(), neg.v()));
        let report = opacity::opacity_report(&g, &red.spec, REDUCTION_L);
        // Variable type 0 drops to 1/2.
        let row = report.per_type.iter().find(|r| r.type_id == 0).unwrap();
        assert_eq!((row.within_l, row.total), (1, 2));
    }
}
