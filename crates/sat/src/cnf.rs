//! 3-CNF formulas.

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Variable index, `0..num_vars`.
    pub var: usize,
    /// `true` for `v`, `false` for `¬v`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal `v`.
    pub fn pos(var: usize) -> Self {
        Literal { var, positive: true }
    }

    /// Negative literal `¬v`.
    pub fn neg(var: usize) -> Self {
        Literal { var, positive: false }
    }

    /// Truth value under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.positive {
            write!(f, "¬")?;
        }
        write!(f, "x{}", self.var)
    }
}

/// A disjunction of exactly three literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clause(pub [Literal; 3]);

impl Clause {
    /// Truth value under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|lit| lit.eval(assignment))
    }
}

/// A 3-SAT instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf3 {
    /// Number of Boolean variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf3 {
    /// Builds an instance, validating literal ranges.
    ///
    /// # Panics
    /// Panics when a literal references a variable `>= num_vars`.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for clause in &clauses {
            for lit in &clause.0 {
                assert!(
                    lit.var < num_vars,
                    "literal {lit} out of range for {num_vars} variables"
                );
            }
        }
        Cnf3 { num_vars, clauses }
    }

    /// Whether `assignment` satisfies every clause.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment length mismatch");
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// The paper's worked example (Theorem 1 / Figure 3), variables
    /// `a, b, c, d` mapped to `x0..x3`:
    ///
    /// `(a ∨ ¬b ∨ c) ∧ (¬a ∨ ¬c ∨ d) ∧ (a ∨ b ∨ ¬d) ∧ (a ∨ ¬b ∨ ¬c) ∧
    ///  (¬b ∨ c ∨ d) ∧ (¬a ∨ b ∨ ¬d)`
    pub fn paper_example() -> Self {
        use Literal as L;
        let (a, b, c, d) = (0, 1, 2, 3);
        Cnf3::new(
            4,
            vec![
                Clause([L::pos(a), L::neg(b), L::pos(c)]),
                Clause([L::neg(a), L::neg(c), L::pos(d)]),
                Clause([L::pos(a), L::pos(b), L::neg(d)]),
                Clause([L::pos(a), L::neg(b), L::neg(c)]),
                Clause([L::neg(b), L::pos(c), L::pos(d)]),
                Clause([L::neg(a), L::pos(b), L::neg(d)]),
            ],
        )
    }

    /// A deterministic pseudo-random instance (xorshift-based; no RNG
    /// dependency) for stress tests.
    pub fn random(num_vars: usize, num_clauses: usize, seed: u64) -> Self {
        assert!(num_vars >= 3, "need at least 3 variables for distinct literals");
        let mut state = seed | 1;
        let mut next = move |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        let clauses = (0..num_clauses)
            .map(|_| {
                // Three distinct variables per clause.
                let v1 = next(num_vars);
                let mut v2 = next(num_vars);
                while v2 == v1 {
                    v2 = next(num_vars);
                }
                let mut v3 = next(num_vars);
                while v3 == v1 || v3 == v2 {
                    v3 = next(num_vars);
                }
                Clause([
                    Literal { var: v1, positive: next(2) == 0 },
                    Literal { var: v2, positive: next(2) == 0 },
                    Literal { var: v3, positive: next(2) == 0 },
                ])
            })
            .collect();
        Cnf3::new(num_vars, clauses)
    }
}

impl std::fmt::Display for Cnf3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (idx, clause) in self.clauses.iter().enumerate() {
            if idx > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({} ∨ {} ∨ {})", clause.0[0], clause.0[1], clause.0[2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_eval() {
        let assignment = [true, false];
        assert!(Literal::pos(0).eval(&assignment));
        assert!(!Literal::neg(0).eval(&assignment));
        assert!(Literal::neg(1).eval(&assignment));
    }

    #[test]
    fn clause_eval_is_disjunction() {
        let c = Clause([Literal::pos(0), Literal::pos(1), Literal::pos(2)]);
        assert!(c.eval(&[false, true, false]));
        assert!(!c.eval(&[false, false, false]));
    }

    #[test]
    fn paper_example_shape() {
        let cnf = Cnf3::paper_example();
        assert_eq!(cnf.num_vars, 4);
        assert_eq!(cnf.clauses.len(), 6);
        // Count occurrences: ¬a appears in clauses 2 and 6 (paper text).
        let neg_a = cnf
            .clauses
            .iter()
            .filter(|c| c.0.contains(&Literal::neg(0)))
            .count();
        assert_eq!(neg_a, 2);
    }

    #[test]
    fn paper_example_is_satisfiable() {
        let cnf = Cnf3::paper_example();
        // a=T, b=T, c=T, d=T: clause 2 = (¬a ∨ ¬c ∨ d) = T via d; clause 6 =
        // (¬a ∨ b ∨ ¬d) = T via b.
        assert!(cnf.eval(&[true, true, true, true]));
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let a = Cnf3::random(5, 10, 42);
        let b = Cnf3::random(5, 10, 42);
        assert_eq!(a, b);
        for clause in &a.clauses {
            let vars: std::collections::HashSet<_> = clause.0.iter().map(|l| l.var).collect();
            assert_eq!(vars.len(), 3, "clause variables must be distinct");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_literals() {
        Cnf3::new(2, vec![Clause([Literal::pos(0), Literal::pos(1), Literal::pos(5)])]);
    }
}
