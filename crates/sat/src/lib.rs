//! Theorem 1 machinery: the NP-hardness reduction from 3-SAT to
//! L-opacification.
//!
//! The paper proves L-opacification NP-hard by encoding a 3-SAT instance as
//! a graph with explicit vertex-pair types (Figure 3):
//!
//! * each variable `v` contributes two disjoint edges — the *positive* edge
//!   `(v_i, v_j)` and the *negative* edge `(v'_i, v'_j)` — forming the
//!   two pairs of type `(A_v, B_v)`;
//! * each clause `C_k` appends, per literal, a fresh pendant pair
//!   `(A_k, B_k)` whose endpoints hang off the corresponding variable
//!   edge's endpoints, creating a path of length 3 that exists **iff** the
//!   variable edge is intact;
//! * with `L = 3`, removing a variable edge is a truth assignment: the
//!   formula is satisfiable iff the construction can be made opaque with
//!   exactly `N` edge removals.
//!
//! This crate builds the construction ([`reduction`]), provides a reference
//! 3-SAT solver ([`solver`]) and decodes edge removals back into
//! assignments ([`decode`]), letting integration tests verify the
//! equivalence by exhaustive enumeration on small instances.

pub mod cnf;
pub mod decode;
pub mod reduction;
pub mod solver;

pub use cnf::{Clause, Cnf3, Literal};
pub use decode::{decode_assignment, DecodeError};
pub use reduction::{Reduction, REDUCTION_L, REDUCTION_THETA};
pub use solver::brute_force_sat;
