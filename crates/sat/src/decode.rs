//! Decoding edge removals back into truth assignments.

use crate::reduction::Reduction;
use lopacity_graph::Edge;

/// Why a removal set fails to encode an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A removed edge is not one of the variable edges.
    NotAVariableEdge(Edge),
    /// Both edges of one variable were removed.
    BothSidesRemoved { var: usize },
    /// Neither edge of one variable was removed.
    Unassigned { var: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NotAVariableEdge(e) => {
                write!(f, "removed edge {e} is not a variable edge")
            }
            DecodeError::BothSidesRemoved { var } => {
                write!(f, "variable x{var} had both its edges removed")
            }
            DecodeError::Unassigned { var } => {
                write!(f, "variable x{var} had neither edge removed")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Interprets a removal set as an assignment: positive edge removed → true,
/// negative edge removed → false (Theorem 1's encoding). Every variable must
/// have exactly one of its edges removed and nothing else may be touched.
pub fn decode_assignment(reduction: &Reduction, removals: &[Edge]) -> Result<Vec<bool>, DecodeError> {
    let mut assignment: Vec<Option<bool>> = vec![None; reduction.num_vars];
    for &e in removals {
        let var = reduction
            .var_edges
            .iter()
            .position(|&(pos, neg)| pos == e || neg == e)
            .ok_or(DecodeError::NotAVariableEdge(e))?;
        let value = reduction.var_edges[var].0 == e;
        match assignment[var] {
            None => assignment[var] = Some(value),
            Some(_) => return Err(DecodeError::BothSidesRemoved { var }),
        }
    }
    assignment
        .into_iter()
        .enumerate()
        .map(|(var, value)| value.ok_or(DecodeError::Unassigned { var }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf3;

    fn reduction() -> Reduction {
        Reduction::build(&Cnf3::paper_example())
    }

    #[test]
    fn round_trips_an_assignment() {
        let red = reduction();
        let assignment = vec![true, false, true, false];
        let removals = red.removals_for_assignment(&assignment);
        assert_eq!(decode_assignment(&red, &removals).unwrap(), assignment);
    }

    #[test]
    fn rejects_non_variable_edges() {
        let red = reduction();
        // A pendant clause edge.
        let pendant = red
            .graph
            .edges()
            .find(|e| e.u() as usize >= 4 * red.num_vars || e.v() as usize >= 4 * red.num_vars)
            .unwrap();
        let err = decode_assignment(&red, &[pendant]).unwrap_err();
        assert!(matches!(err, DecodeError::NotAVariableEdge(_)));
    }

    #[test]
    fn rejects_double_removal() {
        let red = reduction();
        let (pos, neg) = red.var_edges[2];
        let mut removals = red.removals_for_assignment(&[true; 4]);
        removals.push(neg);
        let _ = pos;
        let err = decode_assignment(&red, &removals).unwrap_err();
        assert_eq!(err, DecodeError::BothSidesRemoved { var: 2 });
    }

    #[test]
    fn rejects_missing_variable() {
        let red = reduction();
        let removals = vec![red.var_edges[0].0];
        let err = decode_assignment(&red, &removals).unwrap_err();
        assert_eq!(err, DecodeError::Unassigned { var: 1 });
    }

    #[test]
    fn error_messages_are_descriptive() {
        let red = reduction();
        let err = decode_assignment(&red, &[]).unwrap_err();
        assert!(err.to_string().contains("neither edge"));
    }
}
